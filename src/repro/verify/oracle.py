"""The history oracle: is the recorded schedule actually correct?

Three checks over a :class:`~repro.verify.history.RunHistory`:

* **conformance** -- every data access was covered by a sufficient
  granted mode.  Each ``op.access`` is re-planned through the protocol
  (``protocol.plan(request, lock_depth)``), and every planned lock step
  -- including the intention locks on the ancestor path -- must be
  satisfied by the lock state reconstructed from the grant/release
  events up to that point, either directly (a held mode that subsumes
  the requested one) or through the protocol's coverage rules (an
  ancestor subtree lock, or a parent level-read for pure reads);
* **two-phase** -- transactions under isolation level repeatable (or
  serializable) never release a lock before their commit/abort point;
* **serializability** -- the committed schedule is
  conflict-serializable: a precedence graph over committed transactions
  (read/write/structure conflicts on SPLID regions) must be acyclic.

The serializability check uses a *region* model of each access: node,
content, level (child list), edge, and subtree regions, with subtree
overlap decided on the SPLID division prefix.  Node-vs-level is
deliberately *not* a conflict (renaming a child does not change the
child list a level read observes); structural operations write both
their subtree and the parent's level region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.protocol import (
    EDGE_SPACE,
    MetaOp,
    MetaRequest,
    NODE_SPACE,
)
from repro.core.registry import get_protocol
from repro.obs import (
    LOCK_GRANT,
    LOCK_RELEASE,
    OP_ACCESS,
    TXN_ABORT,
    TXN_COMMIT,
    TraceEvent,
)
from repro.splid import Splid
from repro.verify.history import RunHistory, _request_from

#: Isolation levels whose committed schedules must be serializable and
#: whose transactions must obey two-phase discipline.
STRICT_ISOLATIONS = ("repeatable", "serializable")


@dataclass(frozen=True)
class Violation:
    """One oracle finding, anchored to a trace sequence number."""

    check: str           # "conformance" | "two-phase" | "serializability"
    txn: Optional[str]
    seq: int
    detail: str

    def __str__(self) -> str:
        who = f" txn={self.txn}" if self.txn else ""
        return f"[{self.check}]{who} seq={self.seq}: {self.detail}"


@dataclass
class OracleReport:
    """The oracle's verdict over one run history."""

    protocol: str
    lock_depth: int
    #: Check name -> "ok" / "violated" / "skipped".
    checks: Dict[str, str] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    accesses_checked: int = 0
    steps_checked: int = 0
    committed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        checks = ", ".join(
            f"{name}={state}" for name, state in sorted(self.checks.items())
        )
        return (
            f"{status} protocol={self.protocol} depth={self.lock_depth} "
            f"committed={self.committed} accesses={self.accesses_checked} "
            f"steps={self.steps_checked} [{checks}]"
        )


def verify_trace(
    trace: Union[str, Path, Sequence[TraceEvent]],
    *,
    protocol: Optional[str] = None,
    lock_depth: Optional[int] = None,
) -> OracleReport:
    """Run the oracle over a JSONL trace file or an event sequence."""
    if isinstance(trace, (str, Path)):
        history = RunHistory.from_jsonl(trace)
    else:
        history = RunHistory.from_events(trace)
    return verify_history(history, protocol=protocol, lock_depth=lock_depth)


def verify_history(
    history: RunHistory,
    *,
    protocol: Optional[str] = None,
    lock_depth: Optional[int] = None,
) -> OracleReport:
    config = history.configuration(protocol=protocol, lock_depth=lock_depth)
    proto = get_protocol(str(config["protocol"]))
    depth = int(config["lock_depth"])  # type: ignore[arg-type]
    report = OracleReport(protocol=proto.name, lock_depth=depth)
    report.committed = len(history.committed_transactions())
    _check_conformance(history, proto, depth, report)
    _check_two_phase(history, report)
    _check_serializability(history, report)
    return report


# ---------------------------------------------------------------------------
# conformance: every access covered by a sufficient granted mode
# ---------------------------------------------------------------------------

class _TxnState:
    """Reconstructed lock state of one transaction during trace replay."""

    __slots__ = ("held", "node_locks", "subtree_write", "subtree_read",
                 "level_read")

    def __init__(self) -> None:
        #: (space, key string) -> currently held mode.
        self.held: Dict[Tuple[str, str], str] = {}
        #: key string -> Splid, for NODE_SPACE grants (anchor rebuilds).
        self.node_locks: Dict[str, Splid] = {}
        self.subtree_write: Set[str] = set()
        self.subtree_read: Set[str] = set()
        self.level_read: Set[str] = set()


def _check_conformance(history, proto, depth, report: OracleReport) -> None:
    tables = proto.tables()
    states: Dict[str, _TxnState] = {}
    isolations = {
        label: record.isolation
        for label, record in history.transactions.items()
    }
    checked = False
    for event in history.events:
        if event.kind == LOCK_GRANT:
            _replay_grant(states, tables, event)
        elif event.kind == LOCK_RELEASE:
            _replay_release(states, tables, event)
        elif event.kind in (TXN_COMMIT, TXN_ABORT):
            states.pop(event.txn, None)
        elif event.kind == OP_ACCESS:
            isolation = isolations.get(event.txn, "repeatable")
            if isolation == "none":
                continue
            request = _request_from(event.data)
            if isolation == "uncommitted" and request.is_read:
                continue
            checked = True
            report.accesses_checked += 1
            state = states.get(event.txn) or _TxnState()
            plan = proto.plan(request, depth)
            for step in plan.steps:
                report.steps_checked += 1
                if not _satisfied(state, tables, step):
                    report.violations.append(Violation(
                        "conformance", event.txn, event.seq,
                        f"{request.op.value} on {request.target}: required "
                        f"{step.mode}({step.space}:{step.key}) neither held "
                        f"nor covered",
                    ))
    report.checks["conformance"] = (
        "violated" if any(v.check == "conformance" for v in report.violations)
        else ("ok" if checked else "skipped")
    )


def _replay_grant(states, tables, event: TraceEvent) -> None:
    space = str(event.data["space"])
    key = str(event.data["key"])
    mode = str(event.data["mode"])
    state = states.setdefault(event.txn, _TxnState())
    state.held[(space, key)] = mode
    if space != NODE_SPACE:
        return
    try:
        splid = Splid.parse(key)
    except Exception:
        return
    state.node_locks[key] = splid
    _set_anchors(state, tables.get(space), key, mode)


def _set_anchors(state: _TxnState, table, key: str, mode: str) -> None:
    # Conversions can *lose* coverage (LR -> CX drops the level read), so
    # anchors mirror the currently held mode exactly -- same rule as the
    # lock manager's coverage cache.  A space or mode the checked
    # protocol does not define contributes no coverage (the mismatch
    # then surfaces as a conformance violation, not a crash).
    flags = None if table is None else table.anchor_flags.get(mode)
    subtree_write, subtree_read, level_read = flags or (False, False, False)
    (state.subtree_write.add if subtree_write
     else state.subtree_write.discard)(key)
    (state.subtree_read.add if subtree_read
     else state.subtree_read.discard)(key)
    (state.level_read.add if level_read
     else state.level_read.discard)(key)


def _replay_release(states, tables, event: TraceEvent) -> None:
    if str(event.data.get("scope")) == "transaction":
        states.pop(event.txn, None)
        return
    # Operation scope (isolation level committed): the lock manager
    # releases every held mode outside the space's write modes.
    state = states.get(event.txn)
    if state is None:
        return
    for (space, key), mode in list(state.held.items()):
        table = tables.get(space)
        if table is not None and mode in table.write_modes:
            continue
        del state.held[(space, key)]
    state.subtree_write.clear()
    state.subtree_read.clear()
    state.level_read.clear()
    for (space, key), mode in state.held.items():
        if space == NODE_SPACE and key in state.node_locks:
            _set_anchors(state, tables.get(space), key, mode)


def _satisfied(state: _TxnState, tables, step) -> bool:
    """Mirror of the lock manager's held-or-covered test."""
    table = tables.get(step.space)
    if table is None:
        # The checked protocol never grants in this space.
        return False
    key_str = str(step.key)
    held = state.held.get((step.space, key_str))
    if held is not None and table.subsumes(held, step.mode):
        return True
    if step.space == NODE_SPACE and isinstance(step.key, Splid):
        node: Splid = step.key
        edge_parent = None
    elif step.space == EDGE_SPACE:
        node = step.key[0]
        edge_parent = node.parent
    else:
        return False
    if step.mode in table.write_modes:
        return _anchored(state.subtree_write, node, edge_parent)
    if _anchored(state.subtree_read, node, edge_parent):
        return True
    if step.mode in table.pure_read_modes:
        parent = node.parent
        if parent is not None and str(parent) in state.level_read:
            return True
    return False


def _anchored(
    anchors: Set[str], node: Splid, edge_parent: Optional[Splid]
) -> bool:
    if not anchors:
        return False
    probe = edge_parent if edge_parent is not None else node
    if str(probe) in anchors:
        return True
    for ancestor in probe.ancestors_bottom_up():
        if str(ancestor) in anchors:
            return True
    return False


# ---------------------------------------------------------------------------
# two-phase discipline
# ---------------------------------------------------------------------------

def _check_two_phase(history, report: OracleReport) -> None:
    strict = {
        label for label, record in history.transactions.items()
        if record.isolation in STRICT_ISOLATIONS
    }
    if not strict:
        report.checks["two-phase"] = "skipped"
        return
    released: Set[str] = set()
    ok = True
    for event in history.events:
        if event.txn not in strict:
            continue
        if event.kind == LOCK_RELEASE:
            scope = str(event.data.get("scope"))
            if scope == "operation":
                # Short (pre-commit) releases only exist under isolation
                # level committed; a strict transaction doing one breaks
                # two-phase discipline.
                report.violations.append(Violation(
                    "two-phase", event.txn, event.seq,
                    "operation-scoped lock release before commit",
                ))
                ok = False
            released.add(event.txn)
        elif event.kind == LOCK_GRANT and event.txn in released:
            report.violations.append(Violation(
                "two-phase", event.txn, event.seq,
                "lock acquired after the transaction's shrink point",
            ))
            ok = False
        elif event.kind in (TXN_COMMIT, TXN_ABORT):
            released.discard(event.txn)
    report.checks["two-phase"] = "ok" if ok else "violated"


# ---------------------------------------------------------------------------
# conflict-serializability of the committed schedule
# ---------------------------------------------------------------------------

#: Region kinds of the conflict model.
_NODE, _CONTENT, _LEVEL, _EDGE, _SUBTREE = (
    "node", "content", "level", "edge", "subtree",
)


def _regions(request: MetaRequest) -> List[Tuple[str, object, bool]]:
    """(kind, key, is_write) regions one access touches."""
    op, target = request.op, request.target
    if op is MetaOp.READ_NODE or op is MetaOp.UPDATE_NODE:
        return [(_NODE, target, False)]
    if op is MetaOp.READ_CONTENT:
        return [(_CONTENT, target, False)]
    if op is MetaOp.READ_LEVEL:
        return [(_LEVEL, target, False)]
    if op is MetaOp.READ_SUBTREE:
        return [(_SUBTREE, target, False)]
    if op is MetaOp.WRITE_CONTENT:
        return [(_CONTENT, target, True)]
    if op is MetaOp.RENAME_NODE:
        return [(_NODE, target, True)]
    if op in (MetaOp.INSERT_CHILD, MetaOp.DELETE_SUBTREE):
        regions: List[Tuple[str, object, bool]] = [(_SUBTREE, target, True)]
        parent = target.parent
        if parent is not None:
            regions.append((_LEVEL, parent, True))
        return regions
    if op is MetaOp.READ_EDGE:
        return [(_EDGE, (target, request.role), False)]
    if op is MetaOp.WRITE_EDGE:
        return [(_EDGE, (target, request.role), True)]
    return []


def _prefix_of(ancestor: Splid, node: Splid) -> bool:
    a, b = ancestor.divisions, node.divisions
    return len(a) <= len(b) and b[:len(a)] == a


class _Group:
    """All touches of one (txn, region) pair, collapsed to a seq window.

    A precedence edge A -> B exists iff some conflicting touch of A
    precedes some touch of B, i.e. ``A.first < B.last`` -- so only the
    window endpoints matter, which keeps the conflict scan linear in the
    number of *distinct* regions instead of the number of accesses.
    """

    __slots__ = ("txn", "kind", "key", "node", "write", "first", "last")

    def __init__(self, txn, kind, key, node, write, seq):
        self.txn = txn
        self.kind = kind
        self.key = key
        #: The Splid the region sits at (edge regions: the origin node).
        self.node = node
        self.write = write
        self.first = seq
        self.last = seq


def _collect_groups(history, committed) -> List[_Group]:
    groups: Dict[Tuple[str, str, str, bool], _Group] = {}
    for access in history.accesses:
        if access.txn not in committed:
            continue
        for kind, key, write in _regions(access.request):
            node = key[0] if kind == _EDGE else key
            ident = (access.txn, kind, str(key), write)
            group = groups.get(ident)
            if group is None:
                groups[ident] = _Group(
                    access.txn, kind, key, node, write, access.seq
                )
            else:
                group.last = access.seq
    return list(groups.values())


def _conflict_pairs(groups: List[_Group]):
    """Yield conflicting group pairs (each unordered pair once)."""
    exact: Dict[Tuple[str, str], List[_Group]] = {}
    subtree_at: Dict[str, List[_Group]] = {}
    for group in groups:
        exact.setdefault((group.kind, str(group.key)), []).append(group)
        if group.kind == _SUBTREE:
            subtree_at.setdefault(str(group.key), []).append(group)
    # Same-region conflicts (includes subtree groups with equal roots).
    for bucket in exact.values():
        for i, a in enumerate(bucket):
            for b in bucket[i + 1:]:
                if a.txn != b.txn and (a.write or b.write):
                    yield a, b
    # Subtree-vs-anything along the ancestor chain.  Walking each group's
    # own chain finds every subtree region strictly above it; equal-root
    # subtree pairs were already covered by the exact buckets.
    for group in groups:
        for ancestor in group.node.ancestors_bottom_up():
            for sub in subtree_at.get(str(ancestor), ()):
                if sub.txn != group.txn and (sub.write or group.write):
                    yield sub, group
    # The one conflict the chain walk cannot see: a structural write at
    # ``a`` changes the child list of ``a.parent`` -- one level *above*
    # the subtree root.
    for subs in subtree_at.values():
        parent = subs[0].node.parent
        if parent is None:
            continue
        for lvl in exact.get((_LEVEL, str(parent)), ()):
            for sub in subs:
                if sub.txn != lvl.txn and (sub.write or lvl.write):
                    yield sub, lvl


def _check_serializability(history, report: OracleReport) -> None:
    committed = {t.label for t in history.committed_transactions()}
    strict = all(
        history.transactions[label].isolation in STRICT_ISOLATIONS
        for label in committed
    )
    if not committed or not strict or not history.accesses:
        report.checks["serializability"] = "skipped"
        return
    groups = _collect_groups(history, committed)
    edges: Dict[str, Set[str]] = {label: set() for label in committed}
    samples: Dict[Tuple[str, str], Tuple[int, str]] = {}
    for a, b in _conflict_pairs(groups):
        for src, dst in ((a, b), (b, a)):
            if src.first < dst.last:
                edges[src.txn].add(dst.txn)
                samples.setdefault((src.txn, dst.txn), (
                    dst.last,
                    f"{src.kind}({src.key}) -> {dst.kind}({dst.key})",
                ))
    cycle = _find_cycle(edges)
    if cycle is None:
        report.checks["serializability"] = "ok"
        return
    report.checks["serializability"] = "violated"
    follow = cycle[1] if len(cycle) > 1 else cycle[0]
    first = samples.get((cycle[0], follow), (0, ""))
    report.violations.append(Violation(
        "serializability", cycle[0], first[0],
        "precedence cycle " + " -> ".join(cycle + [cycle[0]])
        + (f" (e.g. {first[1]})" if first[1] else ""),
    ))


def _find_cycle(edges: Dict[str, Set[str]]) -> Optional[List[str]]:
    """Iterative DFS cycle search over the precedence graph."""
    visited: Set[str] = set()
    for start in sorted(edges):
        if start in visited:
            continue
        path: List[str] = [start]
        on_path: Set[str] = {start}
        stack: List[List[str]] = [sorted(edges.get(start, ()))]
        while stack:
            frame = stack[-1]
            if not frame:
                visited.add(path[-1])
                stack.pop()
                on_path.discard(path.pop())
                continue
            nxt = frame.pop(0)
            if nxt in on_path:
                return path[path.index(nxt):]
            if nxt in visited:
                continue
            path.append(nxt)
            on_path.add(nxt)
            stack.append(sorted(edges.get(nxt, ())))
    return None
