"""Open-loop TaMix load generator (``repro loadgen``).

Thousands of simulated clients replay the paper's transaction types
against a lock server, open-loop: every client draws its next arrival
time from a Poisson (or fixed-rate) process *independently of whether
the previous transaction finished*, so a slow server accumulates
queueing delay instead of silently throttling the offered load --
latency is measured from the **scheduled** arrival, which makes the
p99/p999 tail coordinated-omission aware.

Document hotspots are zipfian: book/topic picks rank-weight the ID
space with exponent ``zipf_s`` (0 disables), so a small set of hot
subtrees absorbs most of the traffic -- the regime where lock-protocol
choice actually matters.

Two executors drive the same client-slot generators:

* **live** -- asyncio over TCP, one task per client, wire frames over a
  capped connection pool (a thousand clients share ~64 sockets; pool
  queueing counts into open-loop latency).
* **sim** -- the discrete-event :class:`~repro.sched.simulator
  .Simulator` with an in-process transport that still round-trips every
  request and reply through the :mod:`repro.net.wire` codec.  Simulated
  clocks only: a fixed seed produces a byte-identical report.

Client slots yield :class:`Think`/:class:`Begin`/:class:`Op`/
:class:`Qry`/:class:`Commit` effects; the executor owns transport,
transaction handles, and the clock.  Transient failures (deadlock
victim, lock timeout, admission shed) are retried client-side through
the PR 5 :class:`~repro.chaos.retry.RetryPolicy`; the report counts
retries, sheds, and give-ups per transaction type next to the
p50/p99/p999 latency SLOs.
"""

from __future__ import annotations

import asyncio
import bisect
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.retry import ADMIT, QUEUE, AdmissionPolicy, RetryPolicy
from repro.database import Database
from repro.errors import (
    AdmissionRejected,
    ProtocolError,
    ReproError,
    TransactionAborted,
    TransientError,
    is_transient,
)
from repro.net import wire
from repro.net.server import dispatch_call
from repro.query import QueryProcessor
from repro.sched.simulator import Delay, Simulator
from repro.tamix.bibgen import generate_bib
from repro.tamix.cluster import CLUSTER1_MIX
from repro.tamix.metrics import latency_slo
from repro.txn.transaction import TxnState


# -- effects ------------------------------------------------------------------


class Think:
    """Client think time / pacing wait.  Resumes with ``now_ms``."""

    __slots__ = ("ms",)

    def __init__(self, ms: float):
        self.ms = max(0.0, ms)


class Begin:
    """Open a transaction.  Resumes with ``now_ms``."""

    __slots__ = ("txn_type",)

    def __init__(self, txn_type: str):
        self.txn_type = txn_type


class Op:
    """One node-manager CALL.  Resumes with ``(now_ms, value)``."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple[Any, ...]):
        self.name = name
        self.args = args


class Qry:
    """One XPath QUERY.  Resumes with ``(now_ms, value)``."""

    __slots__ = ("path",)

    def __init__(self, path: str):
        self.path = path


class Commit:
    """Commit the open transaction.  Resumes with ``now_ms``."""

    __slots__ = ()


# -- configuration ------------------------------------------------------------


@dataclass
class LoadGenConfig:
    """One ``repro loadgen`` invocation."""

    mode: str = "sim"  # "sim" | "live"
    clients: int = 100
    duration_ms: float = 10_000.0
    #: Total offered load, transactions/second across all clients.
    rate_tps: float = 100.0
    arrival: str = "poisson"  # "poisson" | "uniform"
    #: Mean think time per visited node (the paper's waitAfterOperation).
    think_ms: float = 5.0
    think_dist: str = "exponential"  # "fixed" | "uniform" | "exponential"
    #: Zipf exponent for book/topic hotspots (0 = uniform access).
    zipf_s: float = 1.1
    seed: int = 2006
    mix: Dict[str, int] = field(default_factory=lambda: dict(CLUSTER1_MIX))
    #: Client-side restart policy for transient failures; None gives up
    #: on the first abort/shed.
    retry: Optional[RetryPolicy] = field(default_factory=RetryPolicy)
    isolation: Optional[str] = None
    # live mode
    host: str = "127.0.0.1"
    port: int = 7420
    #: Max concurrent sockets (0 -> min(clients, 64)).
    pool_size: int = 0
    # sim mode (the in-process server)
    protocol: str = "taDOM3+"
    lock_depth: int = 4
    scale: float = 0.1
    doc_seed: int = 2006
    #: Simulated-ms lock-wait timeout for the in-process database.
    wait_timeout_ms: Optional[float] = 5_000.0
    admission: Optional[AdmissionPolicy] = None
    #: Sim-mode telemetry sampling window (simulated ms; 0 disables the
    #: windowed series in the report).  Live runs scrape the *server's*
    #: series instead.
    telemetry_window_ms: float = 1_000.0

    def resolved_pool_size(self) -> int:
        return self.pool_size if self.pool_size > 0 else min(self.clients, 64)

    def mean_interarrival_ms(self) -> float:
        if self.rate_tps <= 0 or self.clients < 1:
            raise ValueError("rate_tps and clients must be positive")
        return self.clients * 1000.0 / self.rate_tps


# -- zipfian hotspots ---------------------------------------------------------


class ZipfSampler:
    """Rank-weighted index sampling via a precomputed CDF + bisect."""

    def __init__(self, n: int, s: float):
        if n < 1:
            raise ValueError("need at least one item to sample")
        self.n = n
        self._cdf: Optional[List[float]] = None
        if s > 0.0:
            weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
            total = sum(weights)
            cdf, running = [], 0.0
            for w in weights:
                running += w
                cdf.append(running / total)
            cdf[-1] = 1.0
            self._cdf = cdf

    def pick(self, rng: random.Random) -> int:
        if self._cdf is None:
            return rng.randrange(self.n)
        return min(bisect.bisect_left(self._cdf, rng.random()), self.n - 1)


# -- statistics ---------------------------------------------------------------


class _TypeStats:
    __slots__ = (
        "issued", "committed", "aborted", "retries", "sheds", "gave_up",
        "latencies",
    )

    def __init__(self):
        self.issued = 0
        self.committed = 0
        self.aborted = 0
        self.retries = 0
        self.sheds = 0
        self.gave_up = 0
        self.latencies: List[float] = []


class LoadStats:
    """Client-observed counters, per transaction type."""

    def __init__(self):
        self.by_type: Dict[str, _TypeStats] = {}
        self.protocol_errors = 0

    def of(self, txn_type: str) -> _TypeStats:
        stats = self.by_type.get(txn_type)
        if stats is None:
            stats = self.by_type[txn_type] = _TypeStats()
        return stats


# -- client-side transaction programs ----------------------------------------


@dataclass
class ProgramContext:
    """Workload handles shared by every client slot."""

    book_ids: Sequence[str]
    topic_ids: Sequence[str]
    person_ids: Sequence[str]
    book_sampler: ZipfSampler
    topic_sampler: ZipfSampler
    think_ms: float
    think_dist: str

    def pick_book(self, rng: random.Random) -> str:
        return self.book_ids[self.book_sampler.pick(rng)]

    def pick_topic(self, rng: random.Random) -> str:
        return self.topic_ids[self.topic_sampler.pick(rng)]

    def pick_person(self, rng: random.Random) -> str:
        return rng.choice(self.person_ids) if self.person_ids else "p0"

    def think(self, rng: random.Random, units: int) -> Think:
        if self.think_ms <= 0.0 or units <= 0:
            return Think(0.0)
        if self.think_dist == "fixed":
            base = self.think_ms
        elif self.think_dist == "uniform":
            base = rng.uniform(0.0, 2.0 * self.think_ms)
        else:  # exponential
            base = rng.expovariate(1.0 / self.think_ms)
        return Think(base * units)


def lg_query_book(ctx: ProgramContext, rng: random.Random):
    """TAqueryBook: jump to a hot book, read its whole subtree."""
    book = yield Op("get_element_by_id", (ctx.pick_book(rng),))
    yield ctx.think(rng, 1)
    if book is None:
        return
    entries = yield Op("read_subtree", (book,))
    yield ctx.think(rng, len(entries))


def lg_chapter(ctx: ProgramContext, rng: random.Random):
    """TAchapter: read a book, then rewrite one chapter summary."""
    book_id = ctx.pick_book(rng)
    book = yield Op("get_element_by_id", (book_id,))
    yield ctx.think(rng, 1)
    if book is None:
        return
    entries = yield Op("read_subtree", (book,))
    yield ctx.think(rng, len(entries))
    summaries = yield Qry(f"id('{book_id}')/chapters/chapter/summary")
    if not summaries:
        return
    text = yield Op("get_first_child", (rng.choice(list(summaries)),))
    if text is None:
        return
    yield Op("update_content",
             (text, f"revised summary {rng.randrange(10_000)}"))
    yield ctx.think(rng, 1)


def lg_del_book(ctx: ProgramContext, rng: random.Random):
    """TAdelBook: scan a topic's books, delete one subtree (jump)."""
    topic = yield Op("get_element_by_id", (ctx.pick_topic(rng),))
    yield ctx.think(rng, 1)
    if topic is None:
        return
    books = yield Op("get_child_nodes", (topic,))
    yield ctx.think(rng, len(books))
    if not books:
        return
    book = rng.choice(list(books))
    entries = yield Op("read_subtree", (book,))
    yield ctx.think(rng, len(entries))
    yield Op("delete_subtree", (book, "jump"))
    yield ctx.think(rng, 1)


def lg_lend_and_return(ctx: ProgramContext, rng: random.Random):
    """TAlendAndReturn: walk into a book's history, return + lend."""
    book = yield Op("get_element_by_id", (ctx.pick_book(rng),))
    yield ctx.think(rng, 1)
    if book is None:
        return
    history = yield Op("get_last_child", (book,))
    yield ctx.think(rng, 1)
    if history is None:
        return
    lends = yield Op("get_child_nodes", (history,))
    yield ctx.think(rng, len(lends) + 1)
    if lends and rng.random() < 0.5:
        yield Op("delete_subtree", (lends[0],))
        yield ctx.think(rng, 1)
    person = ctx.pick_person(rng)
    lend_date = f"2006-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
    yield Op("insert_tree",
             (history, ("lend", {"person": person, "return": lend_date}, [])))
    yield ctx.think(rng, 1)


def lg_rename_topic(ctx: ProgramContext, rng: random.Random):
    """TArenameTopic: jump to a hot topic and rename it."""
    topic = yield Op("get_element_by_id", (ctx.pick_topic(rng),))
    yield ctx.think(rng, 1)
    if topic is None:
        return
    name = rng.choice(("topic", "subject", "category", "area"))
    yield Op("rename_element", (topic, name))
    yield ctx.think(rng, 1)


#: Client-side programs, keyed by the paper's transaction-type names.
PROGRAMS = {
    "TAqueryBook": lg_query_book,
    "TAchapter": lg_chapter,
    "TAdelBook": lg_del_book,
    "TAlendAndReturn": lg_lend_and_return,
    "TArenameTopic": lg_rename_topic,
}


class _MixPicker:
    """Weighted transaction-type choice with a precomputed CDF."""

    def __init__(self, mix: Dict[str, int]):
        items = [(name, weight) for name, weight in mix.items() if weight > 0]
        if not items:
            raise ValueError("transaction mix is empty")
        for name, _weight in items:
            if name not in PROGRAMS:
                raise ValueError(f"unknown transaction type {name!r}")
        self.names = [name for name, _w in items]
        total = float(sum(w for _n, w in items))
        cdf, running = [], 0.0
        for _name, weight in items:
            running += weight / total
            cdf.append(running)
        cdf[-1] = 1.0
        self._cdf = cdf

    def pick(self, rng: random.Random) -> str:
        index = min(bisect.bisect_left(self._cdf, rng.random()),
                    len(self.names) - 1)
        return self.names[index]


# -- the client slot ----------------------------------------------------------


def client_slot(cfg: LoadGenConfig, ctx: ProgramContext, picker: _MixPicker,
                stats: LoadStats, rng: random.Random, deadline_ms: float):
    """One open-loop client: arrivals, programs, client-side retry.

    Yields effects; the executor resumes with the current time (and the
    reply value for ``Op``/``Qry``) or throws the typed error in.
    """
    mean_ia = cfg.mean_interarrival_ms()

    def interarrival() -> float:
        if cfg.arrival == "uniform":
            return mean_ia
        return rng.expovariate(1.0 / mean_ia)

    # Desynchronize client phases across the first arrival period.
    now = yield Think(rng.uniform(0.0, mean_ia))
    next_arrival = now + interarrival()
    while next_arrival < deadline_ms:
        if now < next_arrival:
            now = yield Think(next_arrival - now)
        scheduled = next_arrival
        next_arrival = scheduled + interarrival()
        txn_type = picker.pick(rng)
        st = stats.of(txn_type)
        st.issued += 1
        restarts = 0
        while True:
            program = PROGRAMS[txn_type](ctx, rng)
            failure = None
            try:
                now = yield Begin(txn_type)
                value = None
                while True:
                    try:
                        effect = program.send(value)
                    except StopIteration:
                        break
                    if isinstance(effect, Think):
                        now = yield effect
                        value = None
                    else:
                        now, value = yield effect
                now = yield Commit()
            except AdmissionRejected:
                st.sheds += 1
                failure = "shed"
            except (TransactionAborted, TransientError):
                st.aborted += 1
                failure = "transient"
            except ProtocolError:
                stats.protocol_errors += 1
                break
            except ReproError:
                st.aborted += 1
                failure = "permanent"
            if failure is None:
                st.committed += 1
                st.latencies.append(now - scheduled)
                break
            if failure == "permanent" or cfg.retry is None or \
                    not cfg.retry.allows_restart(restarts):
                st.gave_up += 1
                break
            restarts += 1
            st.retries += 1
            now = yield Think(cfg.retry.backoff_ms(restarts, rng))


# -- sim executor -------------------------------------------------------------


def _error_roundtrip(exc: Exception) -> Exception:
    """Push an error through ERROR-frame encode/decode (codec fidelity)."""
    _opcode, body = wire.decode_frame(wire.encode_error(exc))
    return wire.decode_error(body)


class SimTransport:
    """In-process server core for the deterministic executor.

    Mirrors :class:`~repro.net.server.LockServer` semantics -- admission
    on BEGIN, abort-on-failed-operation, typed ERROR frames -- but runs
    on simulated time, and round-trips every request and reply through
    the wire codec so sim runs exercise the same byte layer as live
    ones.
    """

    def __init__(self, database: Database, *,
                 isolation: Optional[str] = None,
                 admission: Optional[AdmissionPolicy] = None):
        self.database = database
        self.nodes = database.nodes
        self.query = QueryProcessor(database.nodes)
        self.isolation = isolation
        self.admission = admission.controller() if admission else None
        self.sheds = 0

    def connection(self) -> "SimConnection":
        return SimConnection(self)


class SimConnection:
    """Per-client transport state (mirrors one TCP connection)."""

    __slots__ = ("transport", "txn", "in_restart")

    def __init__(self, transport: SimTransport):
        self.transport = transport
        self.txn = None
        self.in_restart = False

    def begin(self, txn_type: str):
        t = self.transport
        _op, body = wire.decode_frame(wire.encode_frame(
            wire.OP_BEGIN, txn_type, t.isolation
        ))
        name = str(body[0])
        if t.admission is not None and not self.in_restart:
            waits = 0
            while True:
                decision = t.admission.admit(waits)
                if decision is ADMIT:
                    break
                if decision is QUEUE:
                    waits += 1
                    yield Delay(t.admission.policy.queue_backoff_ms)
                    continue
                t.sheds += 1  # SHED
                raise _error_roundtrip(AdmissionRejected(
                    f"admission control shed {name!r} "
                    f"(pressure {t.admission.pressure})"
                ))
        self.txn = t.database.begin(
            name, None if body[1] is None else str(body[1])
        )
        _op, reply = wire.decode_frame(wire.encode_frame(
            wire.OP_BEGUN, self.txn.txn_id
        ))
        return int(reply[0])

    def call(self, name: str, args: Tuple[Any, ...]):
        t = self.transport
        _op, body = wire.decode_frame(wire.encode_frame(
            wire.OP_CALL, self.txn.txn_id, name, tuple(args)
        ))
        generator = dispatch_call(t.nodes, self.txn, str(body[1]), body[2])
        return (yield from self._serve(generator))

    def query(self, path: str):
        t = self.transport
        _op, body = wire.decode_frame(wire.encode_frame(
            wire.OP_QUERY, self.txn.txn_id, path
        ))
        generator = t.query.evaluate(self.txn, str(body[1]))
        return (yield from self._serve(generator))

    def _serve(self, generator):
        try:
            value = yield from generator
        except (ReproError, ValueError, TypeError, AttributeError) as exc:
            raise self._fail(exc) from None
        _op, reply = wire.decode_frame(wire.encode_frame(
            wire.OP_RESULT, value, 0.0
        ))
        return reply[0]

    def _fail(self, exc: Exception) -> Exception:
        """Server-side failure handling: abort, track restart pressure."""
        t = self.transport
        reason = str(getattr(exc, "reason", "") or "")
        if not reason:
            reason = "storage" if isinstance(exc, ReproError) else "error"
        txn, self.txn = self.txn, None
        if txn is not None and txn.state is TxnState.ACTIVE:
            t.database.abort(txn, reason=reason)
        if is_transient(exc) and t.admission is not None \
                and not self.in_restart:
            t.admission.enter_restart()
            self.in_restart = True
        return _error_roundtrip(exc)

    def commit(self) -> None:
        t = self.transport
        wire.decode_frame(wire.encode_frame(wire.OP_COMMIT, self.txn.txn_id))
        t.database.commit(self.txn)
        self.txn = None
        if self.in_restart and t.admission is not None:
            t.admission.leave_restart()
            self.in_restart = False

    def cleanup(self) -> None:
        txn, self.txn = self.txn, None
        if txn is not None and txn.state is TxnState.ACTIVE:
            self.transport.database.abort(txn, reason="rollback")


def _sim_process(slot, conn: SimConnection, sim: Simulator):
    """Drive one client slot as a Simulator process."""
    value: Any = None
    error: Optional[BaseException] = None
    try:
        while True:
            try:
                if error is not None:
                    pending, error = error, None
                    effect = slot.throw(pending)
                else:
                    effect = slot.send(value)
            except StopIteration:
                return
            value = None
            try:
                if isinstance(effect, Think):
                    if effect.ms > 0.0:
                        yield Delay(effect.ms)
                    value = sim.now
                elif isinstance(effect, Begin):
                    yield from conn.begin(effect.txn_type)
                    value = sim.now
                elif isinstance(effect, Op):
                    result = yield from conn.call(effect.name, effect.args)
                    value = (sim.now, result)
                elif isinstance(effect, Qry):
                    result = yield from conn.query(effect.path)
                    value = (sim.now, result)
                elif isinstance(effect, Commit):
                    conn.commit()
                    value = sim.now
                else:
                    raise ProtocolError(f"unknown effect {effect!r}")
            except ReproError as exc:
                error = exc
    finally:
        conn.cleanup()


def run_sim(cfg: LoadGenConfig) -> Dict[str, Any]:
    """The deterministic executor: byte-identical report per seed."""
    info = generate_bib(scale=cfg.scale, seed=cfg.doc_seed)
    database = Database(
        protocol=cfg.protocol,
        lock_depth=cfg.lock_depth,
        isolation=cfg.isolation or "repeatable",
        document=info.document,
        wait_timeout_ms=cfg.wait_timeout_ms,
    )
    sim = Simulator()
    database.set_clock(lambda: sim.now)
    transport = SimTransport(
        database, isolation=cfg.isolation, admission=cfg.admission
    )
    stats = LoadStats()
    ctx = _make_context(cfg, info.book_ids, info.topic_ids, info.person_ids)
    picker = _MixPicker(cfg.mix)
    series = None
    if cfg.telemetry_window_ms > 0.0:
        # The sim-clock twin of the live server's sampler task: one
        # deterministic process ticking the windowed series, so a fixed
        # seed renders a byte-identical telemetry payload.
        from repro.obs import WindowedSeries

        series = WindowedSeries(
            database.obs.metrics,
            window_ms=cfg.telemetry_window_ms,
            clock=lambda: sim.now,
        )

        def _sampler(s=series, window_ms=cfg.telemetry_window_ms):
            while True:
                yield Delay(window_ms)
                s.tick()

        sim.spawn(_sampler(), name="telemetry-sampler")
    master = random.Random(cfg.seed)
    for index in range(cfg.clients):
        rng = random.Random(master.randrange(2 ** 62))
        slot = client_slot(cfg, ctx, picker, stats, rng, cfg.duration_ms)
        sim.spawn(
            _sim_process(slot, transport.connection(), sim),
            name=f"client-{index}",
        )
    sim.run(until=cfg.duration_ms)
    telemetry = series.to_dict() if series is not None else None
    return build_report(cfg, stats, cfg.duration_ms, telemetry=telemetry)


# -- live executor ------------------------------------------------------------


class _AsyncWire:
    """One asyncio wire connection (handshake done on dial)."""

    __slots__ = ("_reader", "_writer", "closed", "server_info")

    @classmethod
    async def dial(cls, host: str, port: int,
                   client_name: str) -> "_AsyncWire":
        conn = cls()
        conn._reader, conn._writer = await asyncio.open_connection(host, port)
        conn.closed = False
        opcode, body = await conn.request(
            wire.OP_HELLO, wire.WIRE_VERSION, client_name
        )
        if opcode != wire.OP_WELCOME:
            raise ProtocolError(f"expected WELCOME, got {hex(opcode)}")
        conn.server_info = body[1]
        return conn

    async def request(self, opcode: int, *fields: Any) -> Tuple[int, Tuple]:
        if self.closed:
            raise ProtocolError("connection is closed")
        try:
            self._writer.write(wire.encode_frame(opcode, *fields))
            await self._writer.drain()
            header = await self._reader.readexactly(4)
            length, _total = wire.split_frame(header)
            payload = await self._reader.readexactly(length)
        except (OSError, asyncio.IncompleteReadError) as exc:
            self.close()
            raise ProtocolError(f"connection lost: {exc}") from None
        try:
            reply_op, body = wire.decode_frame(header + payload)
        except ProtocolError:
            self.close()
            raise
        if reply_op == wire.OP_ERROR:
            raise wire.decode_error(body)
        return reply_op, body

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._writer.close()
            except Exception:
                pass


class _AsyncPool:
    """Caps live sockets; acquisition waits count into open-loop latency."""

    def __init__(self, host: str, port: int, size: int, client_name: str):
        self.host = host
        self.port = port
        self.client_name = client_name
        self._sem = asyncio.Semaphore(size)
        self._idle: List[_AsyncWire] = []

    async def acquire(self) -> _AsyncWire:
        await self._sem.acquire()
        while self._idle:
            conn = self._idle.pop()
            if not conn.closed:
                return conn
        try:
            return await _AsyncWire.dial(
                self.host, self.port, self.client_name
            )
        except BaseException:
            self._sem.release()
            raise

    def release(self, conn: _AsyncWire) -> None:
        if conn.closed:
            pass  # next acquire dials a replacement
        else:
            self._idle.append(conn)
        self._sem.release()

    def close_all(self) -> None:
        for conn in self._idle:
            conn.close()
        self._idle.clear()


async def _live_slot(slot, pool: _AsyncPool, t0: float,
                     isolation: Optional[str]) -> None:
    """Drive one client slot against the live server."""

    def now_ms() -> float:
        return (time.monotonic() - t0) * 1000.0

    conn: Optional[_AsyncWire] = None
    txn_id: Optional[int] = None

    def drop_conn() -> None:
        nonlocal conn, txn_id
        txn_id = None
        if conn is not None:
            pool.release(conn)
            conn = None

    value: Any = None
    error: Optional[BaseException] = None
    try:
        while True:
            try:
                if error is not None:
                    pending, error = error, None
                    effect = slot.throw(pending)
                else:
                    effect = slot.send(value)
            except StopIteration:
                return
            value = None
            try:
                if isinstance(effect, Think):
                    if effect.ms > 0.0:
                        await asyncio.sleep(effect.ms / 1000.0)
                    value = now_ms()
                elif isinstance(effect, Begin):
                    if conn is None:
                        try:
                            conn = await pool.acquire()
                        except OSError as exc:
                            raise ProtocolError(
                                f"dial failed: {exc}"
                            ) from None
                    try:
                        _op, body = await conn.request(
                            wire.OP_BEGIN, effect.txn_type, isolation
                        )
                    except ReproError:
                        drop_conn()
                        raise
                    txn_id = int(body[0])
                    value = now_ms()
                elif isinstance(effect, (Op, Qry)):
                    try:
                        if isinstance(effect, Qry):
                            _op, body = await conn.request(
                                wire.OP_QUERY, txn_id, effect.path
                            )
                        else:
                            _op, body = await conn.request(
                                wire.OP_CALL, txn_id, effect.name,
                                tuple(effect.args),
                            )
                    except ReproError:
                        # The server aborts the transaction on any
                        # failed operation; the lease goes back.
                        drop_conn()
                        raise
                    value = (now_ms(), body[0])
                elif isinstance(effect, Commit):
                    try:
                        await conn.request(wire.OP_COMMIT, txn_id)
                    finally:
                        drop_conn()
                    value = now_ms()
                else:
                    raise ProtocolError(f"unknown effect {effect!r}")
            except ReproError as exc:
                error = exc
    finally:
        if conn is not None:
            if txn_id is not None:
                try:
                    await conn.request(wire.OP_ABORT, txn_id, "rollback")
                except Exception:
                    conn.close()
            pool.release(conn)


async def _run_live_async(cfg: LoadGenConfig) -> Dict[str, Any]:
    pool = _AsyncPool(
        cfg.host, cfg.port, cfg.resolved_pool_size(), "repro-loadgen"
    )
    probe = await pool.acquire()
    info = probe.server_info
    pool.release(probe)
    ctx = _make_context(
        cfg,
        info.get("book_ids", ()),
        info.get("topic_ids", ()),
        info.get("person_ids", ()),
    )
    picker = _MixPicker(cfg.mix)
    stats = LoadStats()
    master = random.Random(cfg.seed)
    t0 = time.monotonic()
    tasks = []
    for _index in range(cfg.clients):
        rng = random.Random(master.randrange(2 ** 62))
        slot = client_slot(cfg, ctx, picker, stats, rng, cfg.duration_ms)
        tasks.append(asyncio.ensure_future(
            _live_slot(slot, pool, t0, cfg.isolation)
        ))
    await asyncio.gather(*tasks)
    duration_ms = (time.monotonic() - t0) * 1000.0
    server_stats = None
    server_telemetry = None
    try:
        probe = await pool.acquire()
        _op, body = await probe.request(wire.OP_STATS)
        server_stats = body[0]
        try:
            _op, body = await probe.request(wire.OP_TELEMETRY)
            server_telemetry = body[0]
        except ReproError:
            pass  # telemetry disabled server-side: report without it
        pool.release(probe)
    except ReproError:
        pass
    pool.close_all()
    return build_report(
        cfg, stats, duration_ms,
        server=server_stats, telemetry=server_telemetry,
    )


def run_live(cfg: LoadGenConfig) -> Dict[str, Any]:
    """Drive the configured load against a live server over TCP."""
    return asyncio.run(_run_live_async(cfg))


def run(cfg: LoadGenConfig) -> Dict[str, Any]:
    if cfg.mode == "sim":
        return run_sim(cfg)
    if cfg.mode == "live":
        return run_live(cfg)
    raise ValueError(f"unknown loadgen mode {cfg.mode!r}")


# -- reporting ----------------------------------------------------------------


def _make_context(cfg: LoadGenConfig, book_ids, topic_ids,
                  person_ids) -> ProgramContext:
    book_ids = list(book_ids)
    topic_ids = list(topic_ids)
    if not book_ids or not topic_ids:
        raise ValueError(
            "the served document carries no bib workload handles "
            "(book_ids/topic_ids) -- loadgen needs a bib document"
        )
    return ProgramContext(
        book_ids=book_ids,
        topic_ids=topic_ids,
        person_ids=list(person_ids),
        book_sampler=ZipfSampler(len(book_ids), cfg.zipf_s),
        topic_sampler=ZipfSampler(len(topic_ids), cfg.zipf_s),
        think_ms=cfg.think_ms,
        think_dist=cfg.think_dist,
    )


def build_report(cfg: LoadGenConfig, stats: LoadStats, duration_ms: float,
                 *, server: Optional[Dict[str, Any]] = None,
                 telemetry: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The loadgen report: config echo, per-type SLOs, overload counts."""
    by_type: Dict[str, Any] = {}
    pooled: List[float] = []
    totals = dict(issued=0, committed=0, aborted=0, retries=0, sheds=0,
                  gave_up=0)
    for name in sorted(stats.by_type):
        st = stats.by_type[name]
        by_type[name] = {
            "issued": st.issued,
            "committed": st.committed,
            "aborted": st.aborted,
            "retries": st.retries,
            "sheds": st.sheds,
            "gave_up": st.gave_up,
            "latency": latency_slo(st.latencies),
        }
        pooled.extend(st.latencies)
        totals["issued"] += st.issued
        totals["committed"] += st.committed
        totals["aborted"] += st.aborted
        totals["retries"] += st.retries
        totals["sheds"] += st.sheds
        totals["gave_up"] += st.gave_up
    report: Dict[str, Any] = {
        "config": {
            "mode": cfg.mode,
            "clients": cfg.clients,
            "duration_ms": cfg.duration_ms,
            "rate_tps": cfg.rate_tps,
            "arrival": cfg.arrival,
            "think_ms": cfg.think_ms,
            "think_dist": cfg.think_dist,
            "zipf_s": cfg.zipf_s,
            "seed": cfg.seed,
            "mix": dict(cfg.mix),
            "retry": None if cfg.retry is None else {
                "max_restarts": cfg.retry.max_restarts,
                "base_backoff_ms": cfg.retry.base_backoff_ms,
                "max_backoff_ms": cfg.retry.max_backoff_ms,
            },
        },
        "duration_ms": duration_ms,
        "by_type": by_type,
        "overall": dict(totals, latency=latency_slo(pooled)),
        "protocol_errors": stats.protocol_errors,
    }
    if cfg.mode == "sim":
        report["config"]["protocol"] = cfg.protocol
        report["config"]["lock_depth"] = cfg.lock_depth
        report["config"]["scale"] = cfg.scale
    if server is not None:
        report["server"] = server
    if telemetry is not None:
        report["telemetry"] = telemetry
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Canonical JSON: sorted keys, so equal runs are equal bytes."""
    return json.dumps(report, sort_keys=True, indent=2)
