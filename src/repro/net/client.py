"""The client library: the embedded ``Session`` surface over a socket.

The design contract is *one constructor change*::

    db = repro.Database(...)                 # embedded
    db = repro.RemoteDatabase("host", 7420)  # remote

    with db.session("reader") as session:
        book = session.run(session.nodes.get_element_by_id("b42"))
        subtree = session.run(session.nodes.read_subtree(book))

Embedded ``session.nodes.X(...)`` returns an operation *generator* that
``session.run`` drives; remote ``session.nodes.X(...)`` returns a
:class:`PendingCall` that ``session.run`` ships as a CALL frame.  Either
way, ``run`` returns the value (and with ``with_cost=True``, the
``(value, cost_ms)`` pair -- the server reports its measured service
time in every RESULT frame).

Error fidelity: ERROR frames carry the server-side exception class name
and its transient/permanent taxonomy, and :func:`repro.net.wire
.decode_error` rebuilds the local class when it exists
(:class:`~repro.errors.DeadlockAbort` raised remotely *is* a
``DeadlockAbort`` here, and ``is_transient`` answers the same), so a
client-side :class:`~repro.chaos.retry.RetryPolicy` treats embedded and
remote failures identically.

Transactions are per-connection server-side, so a :class:`RemoteSession`
leases one pooled connection for its whole lifetime and returns it on
commit/abort.  :class:`ClientPool` caps live sockets; sessions beyond
the cap block until one frees up (which is also what keeps a
thousand-client load generator inside the file-descriptor budget).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple, Union

import random

from repro.chaos.retry import RetryPolicy
from repro.errors import (
    AdmissionRejected,
    ConnectionLostError,
    ProtocolError,
    ReproError,
    TransactionAborted,
    TransactionError,
)
from repro.net import wire
from repro.net.server import NODE_OPS


class PendingCall:
    """A node-manager operation (or query) waiting to be shipped.

    The remote analogue of the operation generator: building one does no
    work; :meth:`RemoteSession.run` serializes it into a CALL or QUERY
    frame.
    """

    __slots__ = ("opcode", "name", "args")

    def __init__(self, opcode: int, name: str, args: Tuple[Any, ...]):
        self.opcode = opcode
        self.name = name
        self.args = args

    def __repr__(self) -> str:
        return f"<PendingCall {self.name}{self.args!r}>"


class WireConnection:
    """One blocking socket speaking the wire protocol (handshake done).

    Not thread-safe on its own; :class:`ClientPool` hands each
    connection to one lease-holder at a time.
    """

    def __init__(self, host: str, port: int, *,
                 client_name: str = "repro-client",
                 timeout_s: Optional[float] = 30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._recv_buffer = bytearray()
        self._recv_offset = 0
        self.closed = False
        # Any handshake failure -- a typed ERROR reply (version mismatch),
        # an unexpected opcode, a torn frame -- must not leak the dialed
        # socket: this connection is never handed to a caller who could
        # close it.
        try:
            opcode, body = self.request(
                wire.OP_HELLO, wire.WIRE_VERSION, client_name
            )
            if opcode != wire.OP_WELCOME or len(body) != 2:
                raise ProtocolError(f"expected WELCOME, got {hex(opcode)}")
        except BaseException:
            self.close()
            raise
        self.server_version, self.server_info = int(body[0]), body[1]

    # -- framing -------------------------------------------------------------

    def _read_exactly(self, n: int) -> bytes:
        """The next ``n`` received bytes.

        The receive buffer is a bytearray consumed through an offset
        cursor: appends are amortized O(chunk) and consuming a frame
        just advances the cursor, so assembling a large frame from many
        TCP segments stays linear (the old ``bytes`` re-slicing was
        quadratic in segment count).  The consumed prefix is trimmed
        once it dominates the buffer, keeping memory bounded.
        """
        buffer = self._recv_buffer
        while len(buffer) - self._recv_offset < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError(
                    "connection closed mid-frame "
                    f"({len(buffer) - self._recv_offset}/{n} bytes)"
                )
            buffer += chunk
        start = self._recv_offset
        end = start + n
        data = bytes(buffer[start:end])
        if end == len(buffer):
            del buffer[:]
            self._recv_offset = 0
        elif end >= 65536 and end * 2 >= len(buffer):
            del buffer[:end]
            self._recv_offset = 0
        else:
            self._recv_offset = end
        return data

    def request(self, opcode: int, *fields: Any) -> Tuple[int, Tuple]:
        """One request frame -> the reply frame; raises decoded errors.

        An ERROR reply is raised as the rebuilt typed exception.  Any
        :class:`ProtocolError` (torn frame, closed socket) marks the
        connection unusable -- the pool will discard it.
        """
        if self.closed:
            raise ProtocolError("connection is closed")
        try:
            self._sock.sendall(wire.encode_frame(opcode, *fields))
            header = self._read_exactly(4)
            length, _total = wire.split_frame(header)
            payload = self._read_exactly(length)
        except (ConnectionResetError, BrokenPipeError) as exc:
            # The peer hung up mid-call (server restart, dropped link):
            # transient, unlike a protocol violation.  Closing here makes
            # the pool evict the connection on release, so the next
            # acquire dials a fresh one.
            self.close()
            raise ConnectionLostError(
                f"connection to {self.host}:{self.port} lost mid-call: {exc}"
            ) from exc
        except (OSError, ProtocolError):
            self.close()
            raise
        try:
            reply_op, body = wire.decode_frame(header + payload)
        except ProtocolError:
            self.close()
            raise
        if reply_op == wire.OP_ERROR:
            raise wire.decode_error(body)
        return reply_op, body

    def ping(self) -> bool:
        opcode, _body = self.request(wire.OP_PING)
        return opcode == wire.OP_PONG

    def stream(self, opcode: int, *fields: Any):
        """One request frame -> a *stream* of reply bodies (SUBSCRIBE).

        Yields each frame body until the server sends DONE; the DONE
        body becomes the generator's *return value* (reachable as
        ``StopIteration.value`` or via ``yield from``), carrying the
        stream trailer -- elapsed ms and, from servers that report it,
        the dropped-window count.  An ERROR frame is raised typed, and
        framing failures close the connection just like
        :meth:`request`.  Abandoning the generator mid-stream leaves
        server frames in flight, so the caller must close (not reuse)
        the connection in that case.
        """
        if self.closed:
            raise ProtocolError("connection is closed")
        try:
            self._sock.sendall(wire.encode_frame(opcode, *fields))
            while True:
                header = self._read_exactly(4)
                length, _total = wire.split_frame(header)
                payload = self._read_exactly(length)
                reply_op, body = wire.decode_frame(header + payload)
                if reply_op == wire.OP_ERROR:
                    raise wire.decode_error(body)
                if reply_op == wire.OP_DONE:
                    return body
                yield body[0]
        except (ConnectionResetError, BrokenPipeError) as exc:
            self.close()
            raise ConnectionLostError(
                f"connection to {self.host}:{self.port} lost mid-stream: "
                f"{exc}"
            ) from exc
        except (OSError, ProtocolError):
            self.close()
            raise

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<WireConnection {self.host}:{self.port} {state}>"


class ClientPool:
    """A bounded pool of :class:`WireConnection`.

    ``acquire`` hands out an idle connection, dials a new one below
    ``size``, and otherwise blocks until a lease returns.  Connections
    that died (protocol error, closed socket) are discarded on release,
    so the pool self-heals across server restarts.
    """

    def __init__(self, host: str, port: int, *, size: int = 8,
                 client_name: str = "repro-client",
                 timeout_s: Optional[float] = 30.0):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.host = host
        self.port = port
        self.size = size
        self.client_name = client_name
        self.timeout_s = timeout_s
        self._idle: list = []
        self._live = 0
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self.closed = False
        #: Connections dialed over the pool's lifetime.
        self.dials = 0

    @property
    def live(self) -> int:
        """Connections currently counted against the pool cap (leased or
        idle).  A dial that fails mid-handshake must leave this at its
        prior value, or the pool permanently loses a slot."""
        with self._lock:
            return self._live

    def acquire(self) -> WireConnection:
        with self._available:
            while True:
                if self.closed:
                    raise ProtocolError("pool is closed")
                while self._idle:
                    conn = self._idle.pop()
                    if not conn.closed:
                        return conn
                    self._live -= 1
                if self._live < self.size:
                    self._live += 1
                    break
                self._available.wait()
        try:
            conn = WireConnection(
                self.host, self.port,
                client_name=self.client_name, timeout_s=self.timeout_s,
            )
        except BaseException:
            with self._available:
                self._live -= 1
                self._available.notify()
            raise
        self.dials += 1
        return conn

    def release(self, conn: WireConnection) -> None:
        with self._available:
            if conn.closed or self.closed:
                conn.close()
                self._live -= 1
            else:
                self._idle.append(conn)
            self._available.notify()

    def close(self) -> None:
        with self._available:
            self.closed = True
            for conn in self._idle:
                conn.close()
            self._live -= len(self._idle)
            self._idle.clear()
            self._available.notify_all()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False


class RemoteNodes:
    """Remote analogue of :class:`~repro.session.SessionNodes`.

    Attribute access returns a builder for the named node-manager
    operation; calling it yields a :class:`PendingCall` for
    :meth:`RemoteSession.run`.  Builders are cached per session, and
    ``__dir__`` lists the operations for introspection -- the same
    contract as the embedded view.
    """

    def __init__(self, session: "RemoteSession"):
        self._session = session

    def __getattr__(self, name: str):
        if name.startswith("_") or name not in NODE_OPS:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )

        def build(*args: Any) -> PendingCall:
            return PendingCall(wire.OP_CALL, name, _wire_args(name, args))

        build.__name__ = name
        # Cache on the instance so repeated access returns the same
        # callable (mirrors SessionNodes' bound-method cache).
        object.__setattr__(self, name, build)
        return build

    def __dir__(self):
        return sorted(set(super().__dir__()) | NODE_OPS)


def _wire_args(name: str, args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Lower call arguments to wire-encodable values.

    ``delete_subtree``'s :class:`~repro.core.protocol.Access` enum
    crosses as its string value; everything else the codec handles
    natively (Splids, specs, strings).
    """
    lowered = []
    for arg in args:
        value = getattr(arg, "value", None)
        if value is not None and type(arg).__name__ == "Access":
            lowered.append(value)
        else:
            lowered.append(arg)
    return tuple(lowered)


class RemoteSession:
    """One server-side transaction under context-manager lifecycle.

    Mirrors :class:`repro.session.Session`: ``nodes`` builds operations,
    ``run`` executes them, clean ``with`` exit commits, an exception
    rolls back and re-raises.  ``elapsed_ms`` accumulates the *server's*
    measured service time per call (the remote analogue of the embedded
    session's simulated cost).
    """

    def __init__(self, database: "RemoteDatabase", name: str = "session",
                 isolation: Optional[str] = None):
        self.database = database
        self.name = name
        self._conn: Optional[WireConnection] = database._lease()
        self.nodes = RemoteNodes(self)
        self.elapsed_ms = 0.0
        self._finished = False
        self.txn_id: Optional[int] = None
        try:
            self.txn_id = database._begin(self._conn, name, isolation)
        except BaseException:
            self._surrender()
            raise

    # -- lifecycle ----------------------------------------------------------

    def _surrender(self) -> None:
        """Return (or discard) the leased connection exactly once."""
        conn, self._conn = self._conn, None
        if conn is not None:
            self.database._pool.release(conn)

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if not self._finished:
            if exc_type is None:
                self.commit()
            else:
                reason = str(getattr(exc, "reason", "") or "rollback")
                self.abort(reason=reason)
        else:
            self._surrender()
        return False  # never swallow the exception

    def commit(self) -> None:
        """Commit on the server; the context-manager exit is a no-op."""
        self._require_active()
        self._finished = True
        try:
            _op, body = self._conn.request(wire.OP_COMMIT, self.txn_id)
            self.elapsed_ms = float(body[0])
        finally:
            self._surrender()

    def abort(self, *, reason: str = "rollback") -> None:
        """Roll back on the server; the context-manager exit is a no-op."""
        self._require_active()
        self._finished = True
        try:
            self._conn.request(wire.OP_ABORT, self.txn_id, reason)
        finally:
            self._surrender()

    def _require_active(self) -> None:
        if self._finished or self._conn is None:
            raise TransactionError(
                f"remote session {self.name!r} (txn {self.txn_id}) "
                "is finished"
            )

    # -- driving ------------------------------------------------------------

    def run(self, call: PendingCall, *, with_cost: bool = False,
            trace: Optional[str] = None) -> Any:
        """Ship one pending operation; returns its value.

        With ``with_cost=True`` returns ``(value, cost_ms)`` where
        ``cost_ms`` is the server-measured service time from the RESULT
        frame (the same contract as ``Database.run``).  ``trace``
        attaches a client request id to the frame; the server propagates
        it into its ``rpc`` span and slow-request log, linking client
        and server observability.  A typed abort from the server
        (deadlock victim, lock timeout) finishes this session -- the
        server has already rolled the transaction back.
        """
        self._require_active()
        if not isinstance(call, PendingCall):
            raise TypeError(
                f"RemoteSession.run expects a PendingCall from "
                f"session.nodes or session.query, not {type(call).__name__}"
            )
        if call.opcode == wire.OP_QUERY:
            frame = (wire.OP_QUERY, self.txn_id, call.args[0])
        else:
            frame = (wire.OP_CALL, self.txn_id, call.name, call.args)
        if trace is not None:
            frame = frame + (str(trace),)
        try:
            _op, body = self._conn.request(*frame)
        except (TransactionAborted, ProtocolError):
            # Server already rolled back (typed abort), or the link is
            # gone -- either way this transaction is over.
            self._finished = True
            self._surrender()
            raise
        except ReproError:
            # The server aborts the transaction on *any* failed
            # operation (see LockServer._work_failed).
            self._finished = True
            self._surrender()
            raise
        value, cost_ms = body[0], float(body[1])
        self.elapsed_ms += cost_ms
        if with_cost:
            return value, cost_ms
        return value

    def query(self, path: str) -> PendingCall:
        """A pending XPath evaluation: ``run(session.query("/bib/.."))``."""
        return PendingCall(wire.OP_QUERY, "query", (str(path),))

    def __repr__(self) -> str:
        state = "finished" if self._finished else "active"
        return f"<RemoteSession {self.name} txn={self.txn_id} {state}>"


class RemoteDatabase:
    """Client-side handle on a served database.

    The remote counterpart of :class:`repro.database.Database`:
    ``session(name, isolation)`` opens a server-side transaction.  With
    a :class:`~repro.chaos.retry.RetryPolicy`, BEGIN frames shed by the
    server's admission controller (:class:`~repro.errors
    .AdmissionRejected` -- transient by definition) are retried with the
    policy's deterministic backoff; ``rejected_begins`` counts the
    sheds absorbed this way.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7420, *,
                 pool_size: int = 8, client_name: str = "repro-client",
                 retry: Optional[RetryPolicy] = None, retry_seed: int = 2006,
                 timeout_s: Optional[float] = 30.0):
        self._pool = ClientPool(
            host, port, size=pool_size,
            client_name=client_name, timeout_s=timeout_s,
        )
        self.retry = retry
        self._retry_rng = random.Random(retry_seed)
        self.rejected_begins = 0
        #: Windows the server dropped (full subscriber queue) during the
        #: most recent completed :meth:`subscribe` stream.
        self.last_dropped_windows = 0

    # -- internal plumbing for RemoteSession ---------------------------------

    def _lease(self) -> WireConnection:
        return self._pool.acquire()

    def _begin(self, conn: WireConnection, name: str,
               isolation: Optional[str]) -> int:
        attempt = 0
        while True:
            try:
                _op, body = conn.request(wire.OP_BEGIN, name, isolation)
                return int(body[0])
            except AdmissionRejected:
                self.rejected_begins += 1
                if self.retry is None or not self.retry.allows_restart(
                    attempt
                ):
                    raise
                attempt += 1
                backoff = self.retry.backoff_ms(attempt, self._retry_rng)
                time.sleep(backoff / 1000.0)

    # -- the public surface --------------------------------------------------

    def session(self, name: str = "session",
                isolation: Optional[str] = None) -> RemoteSession:
        """Open a server-side transaction (context manager)."""
        return RemoteSession(self, name, isolation)

    def info(self) -> Dict[str, Any]:
        """The server's identity/workload payload (fresh INFO request)."""
        conn = self._pool.acquire()
        try:
            _op, body = conn.request(wire.OP_INFO)
            return body[0]
        finally:
            self._pool.release(conn)

    def stats(self) -> Dict[str, Any]:
        """The server's live SLO/overload counters (STATS request)."""
        conn = self._pool.acquire()
        try:
            _op, body = conn.request(wire.OP_STATS)
            return body[0]
        finally:
            self._pool.release(conn)

    def telemetry(self) -> Dict[str, Any]:
        """The server's windowed telemetry series (TELEMETRY request).

        Raises the decoded server error when telemetry is disabled.
        """
        conn = self._pool.acquire()
        try:
            _op, body = conn.request(wire.OP_TELEMETRY)
            return body[0]
        finally:
            self._pool.release(conn)

    def subscribe(self, max_windows: int):
        """Stream ``max_windows`` closed telemetry windows, one dict each.

        Dedicates a pooled connection to the stream for its duration.
        Abandoning the generator early closes that connection (frames
        may still be in flight on it), so the pool redials later.  When
        the stream completes, :attr:`last_dropped_windows` holds the
        server-reported count of windows this stream lost to a full
        subscriber queue (0 for servers predating the trailer field).
        """
        conn = self._pool.acquire()
        complete = False
        try:
            done = yield from conn.stream(wire.OP_SUBSCRIBE, int(max_windows))
            complete = True
            self.last_dropped_windows = (
                int(done[1]) if done is not None and len(done) > 1 else 0
            )
        finally:
            if not complete:
                conn.close()
            self._pool.release(conn)

    def ping(self) -> bool:
        conn = self._pool.acquire()
        try:
            return conn.ping()
        finally:
            self._pool.release(conn)

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "RemoteDatabase":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"<RemoteDatabase {self._pool.host}:{self._pool.port} "
            f"pool={self._pool.size}>"
        )
