"""The wire protocol: length-prefixed binary frames for the lock server.

Layout of one frame on the wire::

    u32 big-endian payload length  |  u8 opcode  |  body bytes

The body is a single value in the tagged binary encoding below -- by
convention a tuple, so a frame is ``(opcode, *fields)``.  The codec
covers exactly the types that cross the session API: ``None``, bools,
ints, floats, strings, bytes, lists, tuples, dicts,
:class:`~repro.splid.Splid` labels, and
:class:`~repro.storage.record.NodeRecord` values.  Anything else is a
programming error and refused at encode time.

Integrity mirrors the WAL torn-tail contract (see
:mod:`repro.verify.faults`): *every* truncated or overlong image raises
:class:`~repro.errors.ProtocolError` -- a decoder that "mostly" reads a
torn frame would turn a dropped TCP segment into silent data corruption.

Version negotiation is a one-byte handshake: the client's HELLO carries
the highest version it speaks, the server answers WELCOME with the
version chosen (currently: exactly :data:`WIRE_VERSION`) or an ERROR
frame carrying :class:`~repro.errors.UnsupportedWireVersion`.

ERROR frames carry the PR 5 transient/permanent taxonomy::

    (code, taxonomy, reason, message)

``code`` is the server-side exception class name, ``taxonomy`` one of
``transient`` / ``permanent`` / ``unclassified``, ``reason`` the abort
token ("deadlock", "timeout", ...) when there is one.  The client
rebuilds a *typed* exception from the registry below, so retry loops
branch on ``except TransientError`` exactly as they do embedded.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Tuple, Type

from repro.errors import (
    AdmissionRejected,
    BenchmarkError,
    ChaosError,
    DeadlockAbort,
    DocumentError,
    LockError,
    LockTimeout,
    NodeNotFound,
    PermanentRemoteError,
    PermanentStorageError,
    ProtocolError,
    RemoteError,
    RollbackError,
    ShardUnavailableError,
    StorageError,
    TransactionAborted,
    TransactionError,
    TransientRemoteError,
    TransientStorageError,
    UnknownProtocolError,
    UnsupportedWireVersion,
    is_permanent,
    is_transient,
)
from repro.query.parser import QueryError
from repro.splid import Splid
from repro.storage.record import NodeKind, NodeRecord

#: The one wire-protocol version this build speaks.
WIRE_VERSION = 1

#: Refuse frames above this payload size (a torn length prefix must not
#: make the reader allocate gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024


# ---------------------------------------------------------------------------
# opcodes
# ---------------------------------------------------------------------------

#: Connection management.
OP_HELLO = 0x01      # (version:int, client_name:str)
OP_WELCOME = 0x02    # (version:int, server_info:dict)
OP_PING = 0x03       # ()
OP_PONG = 0x04       # ()

#: Transaction lifecycle.
OP_BEGIN = 0x10      # (name:str, isolation:str)
OP_BEGUN = 0x11      # (txn_id:int)
OP_COMMIT = 0x12     # (txn_id:int)
OP_ABORT = 0x13      # (txn_id:int, reason:str)
OP_DONE = 0x14       # (cost_ms:float[, dropped_windows:int])
                     # the optional second field ends a SUBSCRIBE
                     # stream with its queue-overflow drop count

#: Work.
OP_CALL = 0x20       # (txn_id:int, op_name:str, args:tuple)
OP_QUERY = 0x21      # (txn_id:int, path:str)
OP_RESULT = 0x22     # (value, cost_ms:float)
OP_INFO = 0x30       # ()
OP_STATS = 0x31      # ()

#: Telemetry (PR 8).  TELEMETRY answers with a RESULT carrying the
#: windowed series payload; SUBSCRIBE asks the server to *stream*
#: ``max_windows`` WINDOW frames (one per sampler tick) followed by a
#: DONE -- the one request that is answered by more than one frame.
OP_TELEMETRY = 0x32  # ()
OP_SUBSCRIBE = 0x33  # (max_windows:int)
OP_WINDOW = 0x34     # (window:dict)  server -> client, streamed

#: Failure.
OP_ERROR = 0x60      # (code:str, taxonomy:str, reason:str, message:str)

OPCODE_NAMES = {
    OP_HELLO: "HELLO", OP_WELCOME: "WELCOME", OP_PING: "PING",
    OP_PONG: "PONG", OP_BEGIN: "BEGIN", OP_BEGUN: "BEGUN",
    OP_COMMIT: "COMMIT", OP_ABORT: "ABORT", OP_DONE: "DONE",
    OP_CALL: "CALL", OP_QUERY: "QUERY", OP_RESULT: "RESULT",
    OP_INFO: "INFO", OP_STATS: "STATS", OP_TELEMETRY: "TELEMETRY",
    OP_SUBSCRIBE: "SUBSCRIBE", OP_WINDOW: "WINDOW", OP_ERROR: "ERROR",
}


# ---------------------------------------------------------------------------
# tagged value codec
# ---------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_SPLID = 0x0A
_T_RECORD = 0x0B

_FLOAT = struct.Struct(">d")


def _write_varint(out: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_signed(out: bytearray, value: int) -> None:
    """Zigzag + LEB128 (small magnitudes stay small either sign)."""
    _write_varint(out, value * 2 if value >= 0 else -value * 2 - 1)


class _Reader:
    """Bounded cursor over one frame body; every read checks the end."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, start: int = 0, end: int = -1):
        self.data = data
        self.pos = start
        self.end = len(data) if end < 0 else end

    def take(self, count: int) -> bytes:
        if count < 0 or self.pos + count > self.end:
            raise ProtocolError(
                f"torn frame: wanted {count} bytes at offset {self.pos}, "
                f"only {self.end - self.pos} left"
            )
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def byte(self) -> int:
        if self.pos >= self.end:
            raise ProtocolError(f"torn frame: no byte at offset {self.pos}")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 70:
                raise ProtocolError("malformed varint (too long)")

    def signed(self) -> int:
        raw = self.varint()
        return (raw >> 1) ^ -(raw & 1)

    @property
    def exhausted(self) -> bool:
        return self.pos >= self.end


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_signed(out, value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _FLOAT.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_varint(out, len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        _write_varint(out, len(value))
        out += value
    elif isinstance(value, Splid):
        out.append(_T_SPLID)
        divisions = value.divisions
        _write_varint(out, len(divisions))
        for division in divisions:
            _write_varint(out, division)
    elif isinstance(value, NodeRecord):
        out.append(_T_RECORD)
        out.append(int(value.kind))
        _write_varint(out, value.name_surrogate)
        _write_varint(out, len(value.content))
        out += value.content
    elif isinstance(value, list):
        out.append(_T_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            _encode_value(out, key)
            _encode_value(out, item)
    else:
        raise ProtocolError(
            f"type {type(value).__name__} is not wire-encodable"
        )


def _decode_value(reader: _Reader) -> Any:
    tag = reader.byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return reader.signed()
    if tag == _T_FLOAT:
        return _FLOAT.unpack(reader.take(8))[0]
    if tag == _T_STR:
        raw = reader.take(reader.varint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"malformed string payload: {exc}") from None
    if tag == _T_BYTES:
        return bytes(reader.take(reader.varint()))
    if tag == _T_SPLID:
        count = reader.varint()
        if count == 0 or count > 4096:
            raise ProtocolError(f"implausible SPLID division count {count}")
        try:
            return Splid(tuple(reader.varint() for _i in range(count)))
        except Exception as exc:
            raise ProtocolError(f"malformed SPLID on the wire: {exc}") from None
    if tag == _T_RECORD:
        kind_byte = reader.byte()
        try:
            kind = NodeKind(kind_byte)
        except ValueError:
            raise ProtocolError(f"unknown node kind {kind_byte}") from None
        surrogate = reader.varint()
        content = bytes(reader.take(reader.varint()))
        return NodeRecord(kind, surrogate, content)
    if tag == _T_LIST:
        return [_decode_value(reader) for _i in range(reader.varint())]
    if tag == _T_TUPLE:
        return tuple(_decode_value(reader) for _i in range(reader.varint()))
    if tag == _T_DICT:
        return {
            _decode_value(reader): _decode_value(reader)
            for _i in range(reader.varint())
        }
    raise ProtocolError(f"unknown value tag 0x{tag:02x}")


def encode_value(value: Any) -> bytes:
    """One value in the tagged encoding (without any frame header)."""
    out = bytearray()
    _encode_value(out, value)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`; refuses trailing garbage."""
    reader = _Reader(data)
    value = _decode_value(reader)
    if not reader.exhausted:
        raise ProtocolError(
            f"{reader.end - reader.pos} trailing bytes after value"
        )
    return value


# ---------------------------------------------------------------------------
# frames
# ---------------------------------------------------------------------------

_LENGTH = struct.Struct(">I")


def encode_frame(opcode: int, *fields: Any) -> bytes:
    """One complete frame: length prefix, opcode byte, tuple body."""
    if not 0 <= opcode <= 0xFF:
        raise ProtocolError(f"opcode {opcode} out of range")
    out = bytearray(5)          # length placeholder + opcode
    out[4] = opcode
    _encode_value(out, tuple(fields))
    payload = len(out) - 4
    if payload > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame payload {payload} exceeds limit")
    out[0:4] = _LENGTH.pack(payload)
    return bytes(out)


def decode_frame(data: bytes) -> Tuple[int, Tuple[Any, ...]]:
    """Decode one complete frame (length prefix included).

    Raises :class:`~repro.errors.ProtocolError` for *any* torn image:
    short header, short payload, trailing bytes, or a body that is not
    a tuple.
    """
    if len(data) < 5:
        raise ProtocolError(f"torn frame: {len(data)} bytes, header needs 5")
    (length,) = _LENGTH.unpack(data[:4])
    if length < 1:
        raise ProtocolError("torn frame: zero-length payload")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame payload {length} exceeds limit")
    if len(data) != 4 + length:
        raise ProtocolError(
            f"torn frame: header promises {length} payload bytes, "
            f"got {len(data) - 4}"
        )
    opcode = data[4]
    reader = _Reader(data, 5)
    body = _decode_value(reader)
    if not reader.exhausted:
        raise ProtocolError(
            f"{reader.end - reader.pos} trailing bytes after frame body"
        )
    if not isinstance(body, tuple):
        raise ProtocolError(
            f"frame body must be a tuple, got {type(body).__name__}"
        )
    return opcode, body


def split_frame(buffer: bytes) -> Tuple[int, int]:
    """(payload_length, total_frame_length) once the header is complete.

    Returns ``(-1, -1)`` while fewer than 4 bytes are buffered.  Raises
    on implausible lengths so a corrupted stream fails fast.
    """
    if len(buffer) < 4:
        return -1, -1
    (length,) = _LENGTH.unpack(buffer[:4])
    if length < 1 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible frame length {length}")
    return length, 4 + length


# ---------------------------------------------------------------------------
# typed errors over the wire
# ---------------------------------------------------------------------------

#: Exception classes a server may name in an ERROR frame and the client
#: rebuilds typed.  Constructors must accept a single message argument.
ERROR_REGISTRY: Dict[str, Type[Exception]] = {
    cls.__name__: cls
    for cls in (
        AdmissionRejected,
        BenchmarkError,
        ChaosError,
        DeadlockAbort,
        DocumentError,
        LockError,
        LockTimeout,
        NodeNotFound,
        PermanentStorageError,
        ProtocolError,
        QueryError,
        RollbackError,
        ShardUnavailableError,
        StorageError,
        TransactionAborted,
        TransactionError,
        TransientStorageError,
        UnknownProtocolError,
        UnsupportedWireVersion,
    )
}


def taxonomy_of(error: BaseException) -> str:
    """The retryability class an ERROR frame advertises."""
    if is_transient(error):
        return "transient"
    if is_permanent(error):
        return "permanent"
    return "unclassified"


def encode_error(error: BaseException) -> bytes:
    """An ERROR frame describing ``error`` (code, taxonomy, reason, msg)."""
    return encode_frame(
        OP_ERROR,
        type(error).__name__,
        taxonomy_of(error),
        str(getattr(error, "reason", "") or ""),
        str(error),
    )


def decode_error(fields: Tuple[Any, ...]) -> Exception:
    """Rebuild a typed exception from an ERROR frame body."""
    if len(fields) != 4:
        raise ProtocolError(f"ERROR frame needs 4 fields, got {len(fields)}")
    code, taxonomy, reason, message = (str(field) for field in fields)
    cls = ERROR_REGISTRY.get(code)
    if cls is not None:
        error = cls(message)
    elif taxonomy == "transient":
        error = TransientRemoteError(message, code=code, reason=reason)
    elif taxonomy == "permanent":
        error = PermanentRemoteError(message, code=code, reason=reason)
    else:
        error = RemoteError(message, code=code, reason=reason)
    if reason and not getattr(error, "reason", None):
        error.reason = reason
    return error
