"""Network front door: wire protocol, asyncio server, client, loadgen.

The embedded :class:`~repro.database.Database` stays the kernel; this
package puts a socket in front of it.  :mod:`repro.net.wire` defines the
length-prefixed binary frame codec, :mod:`repro.net.server` serves one
database over it on asyncio, :mod:`repro.net.client` provides the
blocking client library (:class:`RemoteDatabase` / :class:`RemoteSession`
mirror the embedded surface), and :mod:`repro.net.loadgen` replays TaMix
transaction types open-loop from thousands of simulated clients.
"""

from repro.net import wire
from repro.net.client import (
    ClientPool,
    RemoteDatabase,
    RemoteSession,
    WireConnection,
)
from repro.net.server import (
    LockServer,
    ServerConfig,
    SloTracker,
    run_server,
)

__all__ = [
    "wire",
    "ClientPool",
    "RemoteDatabase",
    "RemoteSession",
    "WireConnection",
    "LockServer",
    "ServerConfig",
    "SloTracker",
    "run_server",
]
