"""The front door: an asyncio socket server around one :class:`Database`.

One server process owns one database (document + lock manager + WAL) and
serves the wire protocol of :mod:`repro.net.wire`.  Concurrency comes
from the same substrate as the simulator and the threaded runtime: every
node-manager operation is a generator yielding
:class:`~repro.sched.simulator.Delay` and
:class:`~repro.locking.lock_table.WaitTicket` effects, and the server
drives them on the asyncio event loop -- everything between two yields
runs atomically on the single loop thread, which is exactly the
latch-protected atomicity the lock table expects (see DESIGN.md and
:mod:`repro.sched.threaded`).

Overload protection is the PR 5 story wired to the network edge: a
:class:`~repro.chaos.retry.AdmissionController` gates BEGIN frames
(queue with backoff, then shed with a typed
:class:`~repro.errors.AdmissionRejected` ERROR frame that clients know
is transient), and every transient abort (deadlock victim, lock-wait
timeout) is reported with its taxonomy so the client-side
:class:`~repro.chaos.retry.RetryPolicy` can restart the transaction.

Latency SLOs: the server clocks every transaction from BEGIN to COMMIT
and every request frame from read to reply, per transaction-type name,
and reports p50/p99/p999 (nearest-rank, see
:func:`repro.tamix.metrics.latency_slo`) through STATS frames and
:meth:`LockServer.stats`.  With tracing enabled each request is wrapped
in an ``rpc`` span, nesting the node manager's ``op`` and ``lock.wait``
spans exactly like embedded runs.
"""

from __future__ import annotations

import asyncio
import heapq
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.retry import ADMIT, QUEUE, AdmissionPolicy
from repro.core.protocol import Access
from repro.database import Database
from repro.errors import (
    ProtocolError,
    ReproError,
    TransactionError,
    AdmissionRejected,
    UnsupportedWireVersion,
    is_transient,
)
from repro.locking.lock_table import WaitTicket
from repro.net import wire
from repro.obs import (
    SPAN_BEGIN,
    SPAN_END,
    MetricsRegistry,
    WindowedSeries,
    txn_label,
)
from repro.query import QueryProcessor
from repro.sched.simulator import Delay, SimulationError
from repro.tamix.bibgen import BibInfo, generate_bib
from repro.tamix.metrics import latency_slo
from repro.txn.transaction import Transaction, TxnState

#: Node-manager operations a CALL frame may name.  Everything else is a
#: protocol error -- the wire surface is the session surface, not the
#: whole object graph.
NODE_OPS = frozenset({
    "get_element_by_id",
    "get_first_child",
    "get_last_child",
    "get_next_sibling",
    "get_previous_sibling",
    "get_parent",
    "get_child_nodes",
    "get_attributes",
    "read_content",
    "get_attribute_value",
    "read_subtree",
    "update_content",
    "rename_element",
    "insert_tree",
    "delete_subtree",
})


def dispatch_call(nodes, txn: Transaction, name: str, args: Tuple[Any, ...]):
    """A node-manager operation generator for one CALL frame.

    ``delete_subtree``'s :class:`~repro.core.protocol.Access` argument
    crosses the wire as its string value ("navigation"/"jump").
    """
    if name not in NODE_OPS:
        raise ProtocolError(f"unknown operation {name!r}")
    if name == "delete_subtree" and len(args) == 2 and isinstance(args[1], str):
        try:
            args = (args[0], Access(args[1]))
        except ValueError:
            raise ProtocolError(f"unknown access kind {args[1]!r}") from None
    try:
        return getattr(nodes, name)(txn, *args)
    except TypeError as exc:
        raise ProtocolError(f"bad arguments for {name}: {exc}") from None


class SloTracker:
    """Per-transaction-type latency samples with SLO percentiles.

    Samples are kept in a bounded per-type reservoir (Algorithm R, seeded
    RNG) so a long-lived server holds O(types * reservoir) floats instead
    of one float per committed transaction ever.  ``slo()`` keeps its
    output shape -- per-type summaries plus ``_overall`` -- and reports
    the *true* observation count per type, with percentiles estimated
    from the reservoir once it saturates.
    """

    def __init__(self, *, reservoir: int = 512, seed: int = 2006):
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self.reservoir = int(reservoir)
        self._rng = random.Random(seed)
        self._samples: Dict[str, List[float]] = {}
        self._observed: Dict[str, int] = {}
        self.committed = 0
        self.aborted = 0
        self.aborted_by_reason: Dict[str, int] = {}

    def record_commit(self, txn_type: str, latency_ms: float) -> None:
        self.committed += 1
        seen = self._observed.get(txn_type, 0)
        self._observed[txn_type] = seen + 1
        samples = self._samples.setdefault(txn_type, [])
        if seen < self.reservoir:
            samples.append(latency_ms)
        else:
            slot = self._rng.randrange(seen + 1)
            if slot < self.reservoir:
                samples[slot] = latency_ms

    def record_abort(self, reason: str) -> None:
        self.aborted += 1
        self.aborted_by_reason[reason] = (
            self.aborted_by_reason.get(reason, 0) + 1
        )

    def slo(self) -> Dict[str, Dict[str, float]]:
        """{txn_type: {count, p50_ms, p99_ms, p999_ms}} plus ``_overall``."""
        report: Dict[str, Dict[str, float]] = {}
        pooled: List[float] = []
        for name, samples in sorted(self._samples.items()):
            row = latency_slo(samples)
            row["count"] = self._observed[name]
            report[name] = row
            pooled.extend(samples)
        overall = latency_slo(pooled)
        total = sum(self._observed.values())
        if total:
            overall["count"] = total
        report["_overall"] = overall
        return report


@dataclass
class ServerConfig:
    """Everything one ``repro serve`` invocation needs."""

    host: str = "127.0.0.1"
    port: int = 7420
    protocol: str = "taDOM3+"
    lock_depth: int = 4
    isolation: str = "repeatable"
    #: Bib document scale for the built-in workload document.
    scale: float = 0.1
    seed: int = 2006
    #: Real-milliseconds lock-wait timeout (the database clock is wall
    #: time on a live server).
    wait_timeout_ms: Optional[float] = 5_000.0
    #: Real seconds slept per simulated millisecond of ``Delay`` cost
    #: (0.0 -- the default -- never sleeps: cost-model delays are
    #: simulation artifacts, the hardware sets the pace).
    time_scale: float = 0.0
    enable_wal: bool = False
    observability: Any = None
    #: Admission control for BEGIN frames; ``None`` admits everything.
    admission: Optional[AdmissionPolicy] = None
    escalation_threshold: Optional[int] = None
    #: Live telemetry plane: windowed series, slow-request log, loop-lag
    #: probe, TELEMETRY/SUBSCRIBE frames.  Disabled, the request path
    #: pays one ``is not None`` check (gated by the perf harness).
    telemetry: bool = True
    telemetry_window_ms: float = 1_000.0
    telemetry_capacity: int = 120
    slow_log_size: int = 16


#: Event-loop lag buckets (wall ms).  A healthy loop oversleeps its
#: sampler window by well under a millisecond; the tail buckets catch
#: long synchronous stretches (big QUERY subtree reads, GC pauses).
LOOP_LAG_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1_000.0,
)


class SlowRequestLog:
    """Top-K requests by service time, with wait/cost attribution.

    A min-heap keyed on service time: a new request enters only by
    beating the current K-th slowest, so steady-state cost per request
    is one comparison.
    """

    def __init__(self, size: int = 16):
        self.size = int(size)
        self._heap: List[Tuple[float, int, Dict[str, Any]]] = []
        self._seq = 0

    def note(self, record: Dict[str, Any]) -> None:
        if self.size <= 0:
            return
        key = (record["service_ms"], self._seq, record)
        self._seq += 1
        if len(self._heap) < self.size:
            heapq.heappush(self._heap, key)
        elif key[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, key)

    def as_list(self) -> List[Dict[str, Any]]:
        """Records, slowest first."""
        return [
            dict(record)
            for _ms, _seq, record in sorted(
                self._heap, key=lambda item: (-item[0], item[1])
            )
        ]


class TelemetryPlane:
    """The server-side live-telemetry bundle.

    Owns a private registry for server-plane instruments (request
    latency and loop-lag histograms, mirrored overload counters), merges
    it with the database's registry into one typed snapshot, and feeds a
    :class:`~repro.obs.timeseries.WindowedSeries` that the sampler task
    ticks once per window.  Everything here runs off the request path:
    the only per-request work is :meth:`note_request`.
    """

    def __init__(self, server: "LockServer"):
        config = server.config
        self.server = server
        self.registry = MetricsRegistry()
        self.request_ms = self.registry.histogram("server.request_ms")
        self.loop_lag_ms = self.registry.histogram(
            "server.loop_lag_ms", LOOP_LAG_BUCKETS_MS
        )
        self.registry.register_collector(self._collect)
        self.slow = SlowRequestLog(config.slow_log_size)
        self.series = WindowedSeries(
            self.snapshot,
            window_ms=config.telemetry_window_ms,
            capacity=config.telemetry_capacity,
            clock=server._now_ms,
        )
        self._window_samples: List[float] = []
        self.series.add_sampler("request_ms", self._drain_samples)
        #: SUBSCRIBE fan-out: one bounded queue per streaming client.
        self.subscribers: List[_Subscriber] = []
        #: Windows dropped across all subscribers (slow consumers).
        self.dropped_windows = 0

    # -- collection ----------------------------------------------------------

    def _collect(self, registry: MetricsRegistry) -> None:
        """Mirror the server's native counters into the registry.

        Counters use the monotone-total idiom (``inc(total - value)``)
        so the windowed series can diff them; point-in-time facts export
        as gauges.
        """
        server = self.server

        def mirror(name: str, total: int) -> None:
            instrument = registry.counter(name)
            instrument.inc(total - instrument.value)

        mirror("server.requests", server.requests)
        mirror("server.connections", server.connections)
        mirror("server.committed", server.slo.committed)
        mirror("server.aborted", server.slo.aborted)
        mirror("server.sheds", server.sheds)
        mirror("server.protocol_errors", server.protocol_errors)
        for reason, total in server.slo.aborted_by_reason.items():
            mirror(f"server.aborted.{reason}", total)
        for name, total in server.requests_by_opcode.items():
            mirror(f"server.requests.{name}", total)
        registry.gauge("server.active_txns").set(
            server.database.transactions.active_count
        )
        registry.gauge("server.uptime_ms").set(round(server._now_ms(), 3))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """One merged typed snapshot: database plane + server plane."""
        merged = self.server.database.obs.metrics.typed_snapshot()
        for kind, instruments in self.registry.typed_snapshot().items():
            merged[kind].update(instruments)
        return merged

    def _drain_samples(self) -> List[float]:
        samples, self._window_samples = self._window_samples, []
        return samples

    # -- the one request-path hook -------------------------------------------

    def note_request(
        self,
        op: str,
        service_ms: float,
        *,
        lock_wait_ms: float = 0.0,
        sim_cost_ms: float = 0.0,
        txn: Optional[str] = None,
        trace: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        self.request_ms.observe(service_ms)
        self._window_samples.append(service_ms)
        record: Dict[str, Any] = {
            "op": op,
            "service_ms": round(service_ms, 3),
            "lock_wait_ms": round(lock_wait_ms, 3),
            "sim_cost_ms": round(sim_cost_ms, 3),
            "t_ms": round(self.server._now_ms(), 3),
            "txn": txn,
        }
        if trace is not None:
            record["trace"] = trace
        if error is not None:
            record["error"] = error
        self.slow.note(record)

    # -- fan-out -------------------------------------------------------------

    def publish(self, window_dict: Dict[str, Any]) -> None:
        """Hand a closed window to every subscriber (count the drops)."""
        for subscriber in self.subscribers:
            try:
                subscriber.queue.put_nowait(window_dict)
            except asyncio.QueueFull:
                # A slow consumer skips windows rather than stalling the
                # sampler -- but the skip is *counted* and reported in
                # the stream's DONE frame, never silently swallowed.
                subscriber.dropped += 1
                self.dropped_windows += 1


class _Subscriber:
    """One SUBSCRIBE stream: its window queue and its drop count."""

    __slots__ = ("queue", "dropped")

    def __init__(self, queue: asyncio.Queue):
        self.queue = queue
        self.dropped = 0


class _DriveStats:
    """Per-request attribution accumulated while driving a generator."""

    __slots__ = ("lock_wait_ms", "sim_cost_ms")

    def __init__(self):
        self.lock_wait_ms = 0.0
        self.sim_cost_ms = 0.0


class _Connection:
    """Per-connection state: negotiated version, open transactions."""

    __slots__ = ("name", "version", "txns", "started", "in_restart")

    def __init__(self):
        self.name = "?"
        self.version = None
        self.txns: Dict[int, Tuple[Transaction, str, float]] = {}
        self.started = 0.0
        self.in_restart = False


class LockServer:
    """Serves one database over the wire protocol."""

    def __init__(
        self,
        database: Database,
        *,
        config: Optional[ServerConfig] = None,
        info: Optional[BibInfo] = None,
    ):
        self.config = config or ServerConfig()
        self.database = database
        self.info = info
        self.nodes = database.nodes
        self.query = QueryProcessor(database.nodes)
        self.slo = SloTracker()
        self.admission = (
            self.config.admission.controller()
            if self.config.admission is not None else None
        )
        self.protocol_errors = 0
        self.sheds = 0
        self.requests = 0
        self.requests_by_opcode: Dict[str, int] = {}
        self.connections = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._t0 = time.monotonic()
        database.set_clock(self._now_ms)
        # Built synchronously (no running loop needed) so from_config
        # works off-loop; the sampler task starts with the server.
        self._plane: Optional[TelemetryPlane] = (
            TelemetryPlane(self) if self.config.telemetry else None
        )
        self._sampler_task: Optional[asyncio.Task] = None

    @classmethod
    def from_config(cls, config: ServerConfig) -> "LockServer":
        """Build a server plus its bib workload document from scratch."""
        info = generate_bib(scale=config.scale, seed=config.seed)
        database = Database(
            protocol=config.protocol,
            lock_depth=config.lock_depth,
            isolation=config.isolation,
            document=info.document,
            wait_timeout_ms=config.wait_timeout_ms,
            enable_wal=config.enable_wal,
            observability=config.observability,
            escalation_threshold=config.escalation_threshold,
        )
        return cls(database, config=config, info=info)

    # -- lifecycle -----------------------------------------------------------

    def _now_ms(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self._plane is not None and self._sampler_task is None:
            self._sampler_task = asyncio.ensure_future(self._sampler_loop())
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _sampler_loop(self) -> None:
        """Close one telemetry window per ``telemetry_window_ms``.

        Doubles as the event-loop lag probe: the sleep's oversleep --
        how late the loop woke us relative to the deadline we asked
        for -- is exactly the scheduling delay every other task saw,
        observed into ``server.loop_lag_ms`` once per window.
        """
        plane = self._plane
        assert plane is not None
        window_s = self.config.telemetry_window_ms / 1000.0
        loop = asyncio.get_running_loop()
        while True:
            target = loop.time() + window_s
            await asyncio.sleep(window_s)
            lag_ms = max(0.0, (loop.time() - target) * 1000.0)
            plane.loop_lag_ms.observe(lag_ms)
            window = plane.series.tick()
            if plane.subscribers:
                plane.publish(window.as_dict())

    @property
    def port(self) -> int:
        if self._server is None:
            raise ReproError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    # -- stats ---------------------------------------------------------------

    def server_info(self) -> Dict[str, Any]:
        """The WELCOME/INFO payload: identity plus workload handles."""
        document = self.database.document
        payload: Dict[str, Any] = {
            "protocol": self.database.protocol.name,
            "lock_depth": self.database.lock_depth,
            "isolation": self.database.default_isolation.value,
            "root": document.name_of(document.root),
            "nodes": int(document.statistics()["nodes"]),
        }
        if self.info is not None:
            payload["book_ids"] = list(self.info.book_ids)
            payload["topic_ids"] = list(self.info.topic_ids)
            payload["person_ids"] = list(self.info.person_ids)
        return payload

    def stats(self) -> Dict[str, Any]:
        """The STATS payload: SLO percentiles and overload counters."""
        return {
            "slo": self.slo.slo(),
            "committed": self.slo.committed,
            "aborted": self.slo.aborted,
            "aborted_by_reason": dict(sorted(
                self.slo.aborted_by_reason.items()
            )),
            "sheds": self.sheds,
            "protocol_errors": self.protocol_errors,
            "requests": self.requests,
            "requests_by_opcode": dict(sorted(
                self.requests_by_opcode.items()
            )),
            "connections": self.connections,
            "active_txns": self.database.transactions.active_count,
            "uptime_ms": round(self._now_ms(), 3),
        }

    def telemetry(self) -> Dict[str, Any]:
        """The TELEMETRY payload: windowed series + live snapshot.

        The series' own ``snapshot`` field is the image at the last
        sampler tick (deterministic under a simulated clock); the
        payload overrides it with a fresh merged snapshot so a one-shot
        scrape sees the current totals, and adds the slow-request log.
        """
        plane = self._plane
        if plane is None:
            raise ReproError("telemetry is disabled on this server")
        payload = plane.series.to_dict()
        payload["snapshot"] = plane.snapshot()
        payload["uptime_ms"] = round(self._now_ms(), 3)
        payload["slow_requests"] = plane.slow.as_list()
        return payload

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.connections += 1
        conn = _Connection()
        try:
            await self._serve_connection(conn, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-frame: nothing left to tell it
        except ProtocolError as exc:
            self.protocol_errors += 1
            await self._try_send(writer, wire.encode_error(exc))
        finally:
            self._abandon(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _abandon(self, conn: _Connection) -> None:
        """Roll back whatever a vanished connection left active."""
        for txn, _name, _started in conn.txns.values():
            if txn.state is TxnState.ACTIVE:
                self.database.abort(txn, reason="rollback")
        conn.txns.clear()
        if conn.in_restart and self.admission is not None:
            self.admission.leave_restart()
            conn.in_restart = False

    async def _read_frame(self, reader) -> Tuple[int, Tuple[Any, ...]]:
        header = await reader.readexactly(4)
        length, _total = wire.split_frame(header)
        payload = await reader.readexactly(length)
        return wire.decode_frame(header + payload)

    async def _try_send(self, writer, frame: bytes) -> None:
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _serve_connection(self, conn, reader, writer) -> None:
        # Handshake first: exactly one HELLO, version-checked.
        try:
            opcode, body = await self._read_frame(reader)
        except asyncio.IncompleteReadError:
            return
        if opcode != wire.OP_HELLO or len(body) != 2:
            raise ProtocolError("expected HELLO (version, client_name)")
        version, client_name = body
        if version != wire.WIRE_VERSION:
            raise UnsupportedWireVersion(
                f"client speaks wire version {version}, "
                f"server speaks {wire.WIRE_VERSION}"
            )
        conn.version = int(version)
        conn.name = str(client_name)
        writer.write(wire.encode_frame(
            wire.OP_WELCOME, wire.WIRE_VERSION, self.server_info()
        ))
        await writer.drain()
        while True:
            try:
                opcode, body = await self._read_frame(reader)
            except asyncio.IncompleteReadError:
                return  # clean EOF between frames
            self.requests += 1
            name = wire.OPCODE_NAMES.get(opcode, f"0x{opcode:02x}")
            self.requests_by_opcode[name] = (
                self.requests_by_opcode.get(name, 0) + 1
            )
            if opcode == wire.OP_SUBSCRIBE:
                # The one request answered by a frame *stream*, so it
                # cannot go through the one-reply _handle_frame path.
                await self._handle_subscribe(writer, body)
                continue
            reply = await self._handle_frame(conn, opcode, body)
            if reply is None:
                return
            writer.write(reply)
            await writer.drain()

    async def _handle_subscribe(self, writer, body) -> None:
        """Stream ``max_windows`` WINDOW frames, then DONE.

        Each frame carries one closed window as the sampler ticks it;
        the subscriber queue is bounded, and a consumer too slow to
        drain it skips windows rather than stalling the sampler.
        """
        if len(body) != 1 or not isinstance(body[0], int) \
                or isinstance(body[0], bool):
            raise ProtocolError("SUBSCRIBE needs (max_windows:int)")
        count = body[0]
        if not 1 <= count <= 10_000:
            raise ProtocolError(
                f"SUBSCRIBE max_windows must be in 1..10000, got {count}"
            )
        plane = self._plane
        if plane is None:
            await self._try_send(writer, wire.encode_error(
                ReproError("telemetry is disabled on this server")
            ))
            return
        subscriber = _Subscriber(asyncio.Queue(maxsize=32))
        plane.subscribers.append(subscriber)
        t0 = self._now_ms()
        try:
            for _ in range(count):
                window_dict = await subscriber.queue.get()
                writer.write(wire.encode_frame(wire.OP_WINDOW, window_dict))
                await writer.drain()
        finally:
            plane.subscribers.remove(subscriber)
        # The DONE frame reports how many windows this stream *lost* to
        # a full queue, so consumers can tell a complete picture from a
        # sampled one.
        writer.write(wire.encode_frame(
            wire.OP_DONE, self._now_ms() - t0, subscriber.dropped
        ))
        await writer.drain()

    async def _handle_frame(self, conn, opcode: int, body) -> Optional[bytes]:
        """One request frame -> one reply frame (None closes the link)."""
        if opcode == wire.OP_PING:
            return wire.encode_frame(wire.OP_PONG)
        if opcode == wire.OP_INFO:
            return wire.encode_frame(
                wire.OP_RESULT, self.server_info(), 0.0
            )
        if opcode == wire.OP_STATS:
            return wire.encode_frame(wire.OP_RESULT, self.stats(), 0.0)
        if opcode == wire.OP_TELEMETRY:
            if self._plane is None:
                return wire.encode_error(
                    ReproError("telemetry is disabled on this server")
                )
            return wire.encode_frame(wire.OP_RESULT, self.telemetry(), 0.0)
        if opcode == wire.OP_BEGIN:
            return await self._handle_begin(conn, body)
        if opcode == wire.OP_COMMIT:
            return self._handle_commit(conn, body)
        if opcode == wire.OP_ABORT:
            return self._handle_abort(conn, body)
        if opcode in (wire.OP_CALL, wire.OP_QUERY):
            return await self._handle_work(conn, opcode, body)
        raise ProtocolError(
            f"unexpected opcode 0x{opcode:02x} "
            f"({wire.OPCODE_NAMES.get(opcode, '?')})"
        )

    async def _handle_begin(self, conn, body) -> bytes:
        if len(body) != 2:
            raise ProtocolError("BEGIN needs (name, isolation)")
        name, isolation = str(body[0]), body[1]
        if self.admission is not None and not conn.in_restart:
            waits = 0
            while True:
                decision = self.admission.admit(waits)
                if decision is ADMIT:
                    break
                if decision is QUEUE:
                    waits += 1
                    await asyncio.sleep(
                        self.admission.policy.queue_backoff_ms / 1000.0
                    )
                    continue
                self.sheds += 1  # SHED
                return wire.encode_error(AdmissionRejected(
                    f"admission control shed {name!r} "
                    f"(pressure {self.admission.pressure})"
                ))
        try:
            txn = self.database.begin(
                name, None if isolation is None else str(isolation)
            )
        except ReproError as exc:
            return wire.encode_error(exc)
        conn.txns[txn.txn_id] = (txn, name, self._now_ms())
        return wire.encode_frame(wire.OP_BEGUN, txn.txn_id)

    def _conn_txn(self, conn, txn_id) -> Tuple[Transaction, str, float]:
        entry = conn.txns.get(txn_id)
        if entry is None:
            raise ProtocolError(
                f"transaction {txn_id} is not open on this connection"
            )
        return entry

    def _handle_commit(self, conn, body) -> bytes:
        if len(body) != 1:
            raise ProtocolError("COMMIT needs (txn_id,)")
        txn, name, started = self._conn_txn(conn, body[0])
        try:
            self.database.commit(txn)
        except ReproError as exc:
            return wire.encode_error(exc)
        del conn.txns[txn.txn_id]
        self.slo.record_commit(name, self._now_ms() - started)
        if conn.in_restart and self.admission is not None:
            self.admission.leave_restart()
            conn.in_restart = False
        return wire.encode_frame(wire.OP_DONE, self._now_ms() - started)

    def _handle_abort(self, conn, body) -> bytes:
        if len(body) != 2:
            raise ProtocolError("ABORT needs (txn_id, reason)")
        txn, _name, started = self._conn_txn(conn, body[0])
        reason = str(body[1]) or "rollback"
        try:
            self.database.abort(txn, reason=reason)
        except ReproError as exc:
            return wire.encode_error(exc)
        del conn.txns[txn.txn_id]
        self.slo.record_abort(reason)
        return wire.encode_frame(wire.OP_DONE, self._now_ms() - started)

    async def _handle_work(self, conn, opcode: int, body) -> bytes:
        trace: Optional[str] = None
        if opcode == wire.OP_CALL:
            if len(body) not in (3, 4):
                raise ProtocolError("CALL needs (txn_id, op, args[, trace])")
            txn_id, name, args = body[0], body[1], body[2]
            if not isinstance(args, tuple):
                raise ProtocolError("CALL args must be a tuple")
            if len(body) == 4:
                trace = body[3]
        else:
            if len(body) not in (2, 3):
                raise ProtocolError("QUERY needs (txn_id, path[, trace])")
            txn_id, name, args = body[0], "query", (str(body[1]),)
            if len(body) == 3:
                trace = body[2]
        if trace is not None and not isinstance(trace, str):
            raise ProtocolError("trace context must be a string or None")
        txn, txn_name, _started = self._conn_txn(conn, txn_id)
        if opcode == wire.OP_CALL:
            generator = dispatch_call(self.nodes, txn, str(name), args)
        else:
            generator = self.query.evaluate(txn, args[0])
        tracer = self.database.tracer
        traced = tracer.enabled
        if traced:
            begin_extra = {"trace": trace} if trace is not None else {}
            tracer.emit(
                SPAN_BEGIN, txn=txn_label(txn), cat="rpc", name=name,
                **begin_extra,
            )
        plane = self._plane
        stats = _DriveStats() if plane is not None else None
        request_t0 = self._now_ms()
        try:
            value = await self._drive(generator, stats)
        except (ReproError, ValueError, TypeError, AttributeError) as exc:
            # Non-Repro failures are bad arguments reaching the kernel
            # (a string where a Splid belongs, ...): the server must
            # report them typed and keep serving, not drop the link.
            cost_ms = self._now_ms() - request_t0
            if traced:
                extra = {"trace": trace} if trace is not None else {}
                tracer.emit(
                    SPAN_END, txn=txn_label(txn), cat="rpc", name=name,
                    error=type(exc).__name__, **extra,
                )
            if plane is not None:
                plane.note_request(
                    str(name), cost_ms,
                    lock_wait_ms=stats.lock_wait_ms,
                    sim_cost_ms=stats.sim_cost_ms,
                    txn=txn_label(txn), trace=trace,
                    error=type(exc).__name__,
                )
            return self._work_failed(conn, txn, txn_name, exc)
        cost_ms = self._now_ms() - request_t0
        if traced:
            extra = {"trace": trace} if trace is not None else {}
            tracer.emit(
                SPAN_END, txn=txn_label(txn), cat="rpc", name=name,
                service_ms=cost_ms, **extra,
            )
        if plane is not None:
            plane.note_request(
                str(name), cost_ms,
                lock_wait_ms=stats.lock_wait_ms,
                sim_cost_ms=stats.sim_cost_ms,
                txn=txn_label(txn), trace=trace,
            )
        return wire.encode_frame(wire.OP_RESULT, value, cost_ms)

    def _work_failed(self, conn, txn, txn_name, exc: Exception) -> bytes:
        """Roll back a failed operation's transaction and report typed.

        Transient failures (deadlock victim, lock timeout) additionally
        raise the admission controller's restart pressure until this
        connection commits again -- the coordinator-side bookkeeping of
        PR 5, moved server-side.
        """
        reason = str(getattr(exc, "reason", "") or "")
        if not reason:
            reason = "storage" if isinstance(exc, ReproError) else "error"
        if txn.state is TxnState.ACTIVE:
            try:
                self.database.abort(txn, reason=reason)
            except ReproError:
                pass  # the original failure is the interesting one
        conn.txns.pop(txn.txn_id, None)
        self.slo.record_abort(reason)
        if is_transient(exc) and self.admission is not None \
                and not conn.in_restart:
            self.admission.enter_restart()
            conn.in_restart = True
        return wire.encode_error(exc)

    # -- effect driving ------------------------------------------------------

    async def _drive(self, generator,
                     stats: Optional[_DriveStats] = None) -> Any:
        """Drive one operation generator on the event loop.

        Mirrors :class:`~repro.sched.threaded.ThreadedRuntime._loop`:
        ``Delay`` sleeps scaled wall time (or just yields the loop),
        ``WaitTicket`` parks on an :class:`asyncio.Event` that the lock
        table's grant callback sets, honouring the wait timeout.

        ``stats`` (telemetry only) attributes the request's time: cost-
        model ``Delay`` milliseconds vs. wall time parked on lock waits.
        """
        time_scale = self.config.time_scale
        send_value: Any = None
        throw_value: Optional[BaseException] = None
        while True:
            try:
                if throw_value is not None:
                    error, throw_value = throw_value, None
                    effect = generator.throw(error)
                else:
                    effect = generator.send(send_value)
            except StopIteration as stop:
                return stop.value
            send_value = None
            if isinstance(effect, Delay):
                if stats is not None:
                    stats.sim_cost_ms += effect.ms
                if time_scale > 0.0 and effect.ms > 0.0:
                    await asyncio.sleep(effect.ms * time_scale)
            elif isinstance(effect, WaitTicket):
                if stats is None:
                    throw_value = await self._await_ticket(effect)
                else:
                    wait_t0 = self._now_ms()
                    throw_value = await self._await_ticket(effect)
                    stats.lock_wait_ms += self._now_ms() - wait_t0
            else:
                raise SimulationError(f"unexpected effect {effect!r}")

    async def _await_ticket(self, ticket: WaitTicket):
        """Park on a blocked lock request; returns an error to throw."""
        if ticket.granted:
            return None
        event = asyncio.Event()
        ticket.on_grant = lambda _ticket: event.set()
        timeout_s = None
        if ticket.timeout_ms is not None:
            # The database clock is wall milliseconds, so the ticket's
            # timeout is too (no time_scale here).
            timeout_s = max(ticket.timeout_ms / 1000.0, 0.001)
        try:
            await asyncio.wait_for(event.wait(), timeout_s)
            return None
        except asyncio.TimeoutError:
            if ticket.granted:
                return None
            if ticket.cancel is not None:
                ticket.cancel()
            from repro.errors import LockTimeout

            return LockTimeout(
                f"lock wait timed out on {ticket.resource} (server)",
                resource=ticket.resource,
                timeout_ms=ticket.timeout_ms,
            )


async def _serve_async(server: LockServer, *, ready=None,
                       max_seconds: Optional[float] = None) -> None:
    host, port = await server.start()
    if ready is not None:
        ready(server, host, port)
    # Graceful shutdown on SIGTERM/SIGINT.  A handler is essential for
    # scripted runs: a process backgrounded by a non-interactive shell
    # (CI smoke jobs) inherits SIGINT ignored, and SIGTERM's default
    # action would skip the final stats report.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without loop signals
    try:
        task = asyncio.ensure_future(server.serve_forever())
        try:
            await asyncio.wait_for(stop.wait(), max_seconds)
        except asyncio.TimeoutError:
            pass  # fixed uptime reached (CI smoke)
        finally:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()


def run_server(config: ServerConfig, *, ready=None,
               max_seconds: Optional[float] = None) -> LockServer:
    """Blocking entry point: build, bind, and serve until interrupted.

    ``ready(server, host, port)`` fires once the socket is bound;
    ``max_seconds`` stops the server after a fixed uptime (CI smoke),
    ``None`` serves until Ctrl-C.  Returns the server (with its final
    stats) after shutdown either way.
    """
    server = LockServer.from_config(config)
    try:
        asyncio.run(_serve_async(server, ready=ready, max_seconds=max_seconds))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return server
