"""Order-preserving byte encoding and prefix compression for SPLIDs.

The document store keeps one B*-tree entry per node, keyed by the byte
representation of the node's SPLID (Section 3.2 / Figure 6 of the paper).
Two properties are required of the encoding:

1. **Order preservation** -- ``bytes(a) < bytes(b)`` iff ``a`` precedes
   ``b`` in document order, so a plain byte-comparing B-tree stores the
   document in left-most depth-first order.
2. **Prefix behaviour** -- the encoding of an ancestor is a byte prefix of
   the encodings of its descendants, which makes in-page *prefix
   compression* highly effective (the paper reports 2-3 bytes per stored
   SPLID on average).

Each division is encoded with a length-banded scheme in which longer
encodings start with strictly larger lead bytes, so concatenating the
per-division codes preserves tuple order:

========  ==================  =======================
band      division range      bytes
========  ==================  =======================
1         1 .. 0x7F           ``0vvvvvvv``
2         0x80 .. 0x407F      ``10vvvvvv vvvvvvvv``
3         0x4080 .. 2**29+... ``11vvvvvv`` + 3 bytes
========  ==================  =======================
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import SplidError
from repro.splid.splid import Splid

_BAND1_MAX = 0x7F
_BAND2_MAX = _BAND1_MAX + (1 << 14)          # 0x407F
_BAND3_MAX = _BAND2_MAX + (1 << 30)


def encode_division(value: int) -> bytes:
    """Encode one division value, order-preserving across bands."""
    if value < 1:
        raise SplidError(f"division values must be >= 1, got {value}")
    if value <= _BAND1_MAX:
        return bytes((value,))
    if value <= _BAND2_MAX:
        offset = value - _BAND1_MAX - 1
        return bytes((0x80 | (offset >> 8), offset & 0xFF))
    if value <= _BAND3_MAX:
        offset = value - _BAND2_MAX - 1
        return bytes(
            (
                0xC0 | (offset >> 24),
                (offset >> 16) & 0xFF,
                (offset >> 8) & 0xFF,
                offset & 0xFF,
            )
        )
    raise SplidError(f"division value {value} exceeds the encodable range")


def encode(splid: Splid) -> bytes:
    """Byte key for a SPLID (concatenated per-division codes)."""
    return b"".join(encode_division(d) for d in splid.divisions)


def decode(data: bytes) -> Splid:
    """Inverse of :func:`encode`."""
    return _splid_from_decoded(decode_divisions(data))


def _splid_from_decoded(divs: Tuple[int, ...]) -> Splid:
    """Interned Splid from decoded divisions.

    Band/Huffman decoding guarantees every division is >= 1, so only the
    root and odd-tail invariants remain to check before taking the
    trusted constructor path.
    """
    if divs[0] != 1:
        raise SplidError(f"document root division must be 1, got {divs[0]}")
    if divs[-1] % 2 == 0:
        raise SplidError(f"a SPLID must end with an odd division, got {divs!r}")
    return Splid._from_divisions(divs)


def decode_divisions(data: bytes) -> Tuple[int, ...]:
    divisions: List[int] = []
    i = 0
    n = len(data)
    while i < n:
        lead = data[i]
        if lead <= _BAND1_MAX:
            divisions.append(lead)
            i += 1
        elif lead < 0xC0:
            if i + 1 >= n:
                raise SplidError("truncated band-2 division")
            offset = ((lead & 0x3F) << 8) | data[i + 1]
            divisions.append(offset + _BAND1_MAX + 1)
            i += 2
        else:
            if i + 3 >= n:
                raise SplidError("truncated band-3 division")
            offset = (
                ((lead & 0x3F) << 24)
                | (data[i + 1] << 16)
                | (data[i + 2] << 8)
                | data[i + 3]
            )
            divisions.append(offset + _BAND2_MAX + 1)
            i += 4
    if not divisions:
        raise SplidError("empty SPLID encoding")
    return tuple(divisions)


def common_prefix_length(a: bytes, b: bytes) -> int:
    """Length of the shared byte prefix of two encoded keys."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


def prefix_compress(keys: Sequence[bytes]) -> List[Tuple[int, bytes]]:
    """Front-code a sorted key sequence.

    Each key is stored as ``(shared, tail)`` where ``shared`` bytes are
    taken from the *previous* key.  This is the in-page compression the
    paper credits with reducing stored SPLIDs to 2-3 bytes on average.
    """
    compressed: List[Tuple[int, bytes]] = []
    previous = b""
    for key in keys:
        shared = common_prefix_length(previous, key)
        compressed.append((shared, key[shared:]))
        previous = key
    return compressed


def prefix_decompress(entries: Iterable[Tuple[int, bytes]]) -> List[bytes]:
    """Inverse of :func:`prefix_compress`."""
    keys: List[bytes] = []
    previous = b""
    for shared, tail in entries:
        if shared > len(previous):
            raise SplidError("corrupt front-coding: prefix longer than previous key")
        key = previous[:shared] + tail
        keys.append(key)
        previous = key
    return keys


def compressed_size(keys: Sequence[bytes]) -> int:
    """Total tail bytes after front-coding (prefix-length bytes excluded)."""
    return sum(len(tail) for _shared, tail in prefix_compress(keys))


def average_stored_bytes(keys: Sequence[bytes]) -> float:
    """Average stored bytes per key under front-coding (tail + 1 length byte).

    Used by the storage-statistics example to reproduce the paper's claim
    of 2-3 bytes per SPLID in document order.
    """
    if not keys:
        return 0.0
    total = sum(len(tail) + 1 for _shared, tail in prefix_compress(keys))
    return total / len(keys)
