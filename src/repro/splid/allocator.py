"""SPLID allocation: initial labeling gaps and insert-between overflow.

Section 3.2 of the paper: upon initial document storage only odd division
values are assigned, spaced by the ``dist`` parameter (children receive
``dist+1``, ``2*dist+1``, ...).  A later insertion between two existing
siblings that leaves no odd value free falls back to the *overflow*
mechanism -- an even division is appended and the search continues one
position deeper, e.g. the node inserted between ``1.3.3`` and ``1.3.5``
receives ``1.3.4.3``.

Existing SPLIDs are immutable: allocation never relabels present nodes.
The property-based tests assert the invariants the paper relies on:

* the new label sorts strictly between its neighbours,
* the new label is a child of the requested parent (correct level),
* repeated insertions at the same position always succeed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import SplidError
from repro.splid.splid import Splid

#: Default labeling gap; the paper recommends dist=2 for almost static
#: documents and larger values for update-heavy ones.
DEFAULT_DIST = 2


def _first_odd_above(value: int) -> int:
    """Smallest odd integer strictly greater than ``value``."""
    return value + 1 if value % 2 == 0 else value + 2


def _suffix_after(lo: Sequence[int], dist: int) -> Tuple[int, ...]:
    """A sibling suffix strictly greater than ``lo`` (no upper neighbour)."""
    nxt = lo[0] + dist
    if nxt % 2 == 0:
        nxt += 1
    if nxt <= lo[0]:
        nxt = _first_odd_above(lo[0])
    return (nxt,)


def _suffix_before(hi: Sequence[int], dist: int) -> Tuple[int, ...]:
    """A sibling suffix strictly smaller than ``hi`` (no lower neighbour).

    Division values 1 are reserved for attribute roots / string nodes, so
    the smallest usable odd division is 3 and the smallest usable even
    (overflow) division is 2.
    """
    if hi[0] >= 4:
        d = hi[0] - 1 if hi[0] % 2 == 0 else hi[0] - 2
        if d >= 3:
            return (d,)
    # hi[0] == 3 (or 2): descend below it via overflow division 2.
    if hi[0] == 2:
        return (2,) + _suffix_before(hi[1:], dist)
    return (2, dist + 1)


def _suffix_between(lo: Sequence[int], hi: Sequence[int], dist: int) -> Tuple[int, ...]:
    """A sibling suffix strictly between ``lo`` and ``hi``.

    Both arguments are sibling suffixes: zero or more even overflow
    divisions followed by exactly one odd division.  The result has the
    same shape, which keeps the level of the new node identical to its
    siblings.
    """
    l0, h0 = lo[0], hi[0]
    if h0 - l0 >= 2:
        cand = _first_odd_above(l0)
        if cand < h0:
            return (cand,)
        # l0 and h0 are consecutive odd values (h0 == l0 + 2): overflow.
        return (l0 + 1, dist + 1)
    if h0 == l0:
        # Shared (necessarily even) overflow division: recurse deeper.
        return (l0,) + _suffix_between(lo[1:], hi[1:], dist)
    # h0 == l0 + 1: one side is even.
    if l0 % 2 == 1:
        # lo == (l0,) exactly; slot below hi's first division.
        return (h0,) + _suffix_before(hi[1:], dist)
    # l0 even: hi == (h0,) with h0 odd; extend past lo under l0.
    return (l0,) + _suffix_after(lo[1:], dist)


class SplidAllocator:
    """Allocates child and sibling labels for one document.

    The allocator is a pure label calculator: it keeps no per-document
    state beyond the ``dist`` parameter, because every decision can be made
    from the labels of the neighbours alone.  That statelessness is what
    lets concurrent transactions allocate labels under ordinary node locks.
    """

    def __init__(self, dist: int = DEFAULT_DIST):
        if dist < 2 or dist % 2 != 0:
            raise SplidError(f"dist must be an even value >= 2, got {dist}")
        self.dist = dist

    # -- initial (bulk) labeling -------------------------------------------

    def initial_children(self, parent: Splid, count: int) -> Tuple[Splid, ...]:
        """Labels for ``count`` children of a freshly stored node.

        Only odd divisions spaced by ``dist`` are handed out, leaving gaps
        for later insertions (``dist+1``, ``2*dist+1``, ...).
        """
        return tuple(
            parent.child(index * self.dist + self.dist + 1)
            for index in range(count)
        )

    def nth_initial_child(self, parent: Splid, index: int) -> Splid:
        """Label of the ``index``-th (0-based) initially stored child."""
        return parent.child(index * self.dist + self.dist + 1)

    # -- dynamic insertion ---------------------------------------------------

    def between(
        self,
        parent: Splid,
        before: Optional[Splid],
        after: Optional[Splid],
    ) -> Splid:
        """Label for a node inserted between two siblings.

        ``before`` / ``after`` are the existing left / right neighbours (or
        ``None`` at either end of the child list).  Both must be children
        of ``parent``.
        """
        lo = self._check_child_suffix(parent, before, "before")
        hi = self._check_child_suffix(parent, after, "after")
        if lo is None and hi is None:
            suffix: Tuple[int, ...] = (self.dist + 1,)
        elif hi is None:
            suffix = _suffix_after(lo, self.dist)  # type: ignore[arg-type]
        elif lo is None:
            suffix = _suffix_before(hi, self.dist)
        else:
            if tuple(lo) >= tuple(hi):
                raise SplidError(
                    f"neighbours out of order: {before} !< {after}"
                )
            suffix = _suffix_between(lo, hi, self.dist)
        return parent.with_suffix(suffix)

    def first_child(self, parent: Splid, existing_first: Optional[Splid]) -> Splid:
        """Label for a node inserted as the new first child."""
        return self.between(parent, None, existing_first)

    def last_child(self, parent: Splid, existing_last: Optional[Splid]) -> Splid:
        """Label for a node appended as the new last child."""
        return self.between(parent, existing_last, None)

    # -- meta nodes ----------------------------------------------------------

    def attribute_root(self, element: Splid) -> Splid:
        return element.attribute_root

    def attribute(self, attribute_root: Splid, index: int) -> Splid:
        """Label for the ``index``-th attribute below an attribute root."""
        return self.nth_initial_child(attribute_root, index)

    def string_node(self, owner: Splid) -> Splid:
        return owner.string_node

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _check_child_suffix(
        parent: Splid, neighbour: Optional[Splid], role: str
    ) -> Optional[Tuple[int, ...]]:
        if neighbour is None:
            return None
        if not parent.is_ancestor_of(neighbour):
            raise SplidError(
                f"{role} neighbour {neighbour} is not below parent {parent}"
            )
        suffix = neighbour.local_suffix(parent)
        odd_count = sum(1 for d in suffix if d % 2 == 1)
        if odd_count != 1:
            raise SplidError(
                f"{role} neighbour {neighbour} is not a direct child of {parent}"
            )
        return suffix
