"""SPLID node labels (stable path labeling identifiers).

Public surface of the labeling scheme described in Section 3.2 of the
paper: the :class:`~repro.splid.splid.Splid` value type, the
:class:`~repro.splid.allocator.SplidAllocator` for gap-based initial
labeling and overflow insertion, and the order-preserving byte codec used
as the B*-tree key representation.
"""

from repro.splid.allocator import DEFAULT_DIST, SplidAllocator
from repro.splid.codec import (
    average_stored_bytes,
    common_prefix_length,
    decode,
    encode,
    prefix_compress,
    prefix_decompress,
)
from repro.splid.splid import META_DIVISION, Splid, document_order

__all__ = [
    "DEFAULT_DIST",
    "META_DIVISION",
    "Splid",
    "SplidAllocator",
    "average_stored_bytes",
    "common_prefix_length",
    "decode",
    "document_order",
    "encode",
    "prefix_compress",
    "prefix_decompress",
]
