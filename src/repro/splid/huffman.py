"""Huffman-style bit encoding for SPLIDs (Section 3.2).

"Efficient SPLID encoding based on Huffman trees consumed in the average
5 to 10 bytes for tree depths up to 38."  Division values follow a highly
skewed distribution (small odd values dominate), so XTC assigned
Huffman-style *length-class* prefix codes: a short code selects a value
range, followed by just enough bits for the offset inside the range.

The code table used here (prefix / payload bits / value range)::

    0     3 bits   1 .. 8
    10    6 bits   9 .. 72
    110   10 bits  73 .. 1096
    1110  14 bits  1097 .. 17480
    1111  24 bits  17481 .. 16794696

The encoding is order-preserving on the *bit* level (longer prefixes sort
after shorter ones, ranges ascend), which is what the lock manager needs;
the byte-aligned document store keeps using the band codec of
:mod:`repro.splid.codec`, whose padding-free bytes also preserve order.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import SplidError
from repro.splid.codec import _splid_from_decoded
from repro.splid.splid import Splid

#: (prefix bits as string, payload bit count, first value of the range).
_CLASSES: Tuple[Tuple[str, int, int], ...] = (
    ("0", 3, 1),
    ("10", 6, 9),
    ("110", 10, 73),
    ("1110", 14, 1097),
    ("1111", 24, 17481),
)


def encode_division_bits(value: int) -> str:
    """Bit string for one division value."""
    if value < 1:
        raise SplidError(f"division values must be >= 1, got {value}")
    for prefix, payload_bits, first in _CLASSES:
        size = 1 << payload_bits
        if value < first + size:
            offset = value - first
            return prefix + format(offset, f"0{payload_bits}b")
    raise SplidError(f"division value {value} exceeds the Huffman range")


def encode_bits(splid: Splid) -> str:
    """Bit string for a whole SPLID (concatenated division codes)."""
    return "".join(encode_division_bits(d) for d in splid.divisions)


def decode_bits(bits: str) -> Splid:
    """Inverse of :func:`encode_bits`."""
    return _splid_from_decoded(decode_divisions_bits(bits))


def decode_divisions_bits(bits: str) -> Tuple[int, ...]:
    divisions: List[int] = []
    pos = 0
    length = len(bits)
    while pos < length:
        # The prefixes form a prefix-free code, so first match wins.
        for prefix, payload_bits, first in _CLASSES:
            if bits.startswith(prefix, pos):
                start = pos + len(prefix)
                end = start + payload_bits
                if end > length:
                    raise SplidError("truncated Huffman encoding")
                divisions.append(first + int(bits[start:end], 2))
                pos = end
                break
        else:
            raise SplidError(f"undecodable bits at position {pos}")
    if not divisions:
        raise SplidError("empty Huffman encoding")
    return tuple(divisions)


def encode_bytes(splid: Splid) -> bytes:
    """Byte-aligned Huffman encoding (zero-padded to a byte boundary).

    Padding sacrifices order preservation across different lengths, so
    this form is for *storage size* (value parts, logs), not for B-tree
    keys.
    """
    bits = encode_bits(splid)
    padding = (-len(bits)) % 8
    bits = bits + "0" * padding
    return int(bits, 2).to_bytes(len(bits) // 8, "big") if bits else b""


def encoded_bit_length(splid: Splid) -> int:
    return len(encode_bits(splid))


def average_encoded_bytes(labels: Iterable[Splid]) -> float:
    """Mean byte-aligned Huffman size (the paper reports 5-10 bytes for
    tree depths up to 38)."""
    labels = list(labels)
    if not labels:
        return 0.0
    total = sum((encoded_bit_length(label) + 7) // 8 for label in labels)
    return total / len(labels)
