"""Stable path labeling identifiers (SPLIDs).

SPLIDs are the prefix-based (Dewey / ORDPATH-style) node labels described in
Section 3.2 of the paper.  A SPLID is a sequence of integer *divisions*:

* the label of a node contains the label of its parent as a prefix;
* **odd** division values indicate a level transition;
* **even** division values are an overflow mechanism for labels inserted
  between existing siblings (they do not add a level);
* division value ``1`` at levels below the root labels the *virtually
  expanded* nodes of the taDOM storage model: attribute roots and string
  nodes (where sibling order does not matter).

Examples from the paper: ``1.3.3`` and ``1.3.5`` are consecutive nodes at
level 3; a node inserted between them receives ``1.3.4.3``.  Levels are
obtained by counting odd divisions, document order by plain division-wise
comparison, and the ancestor labels by truncating divisions -- all without
touching the stored document, which is what makes intention locking along
the ancestor path cheap.

This module implements the label value type.  Allocation of new labels
(including the ``dist`` gap parameter) lives in
:mod:`repro.splid.allocator`; order-preserving byte encoding in
:mod:`repro.splid.codec`.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator, Optional, Sequence, Tuple

from repro.errors import SplidError

#: Division value reserved for attribute roots and string nodes.
META_DIVISION = 1


@total_ordering
class Splid:
    """An immutable, order-comparable stable path labeling identifier.

    Instances are hashable and compare in *document order*: ancestors sort
    before their descendants, and siblings sort by their division values.
    """

    __slots__ = ("_divisions",)

    def __init__(self, divisions: Sequence[int]):
        divs = tuple(int(d) for d in divisions)
        if not divs:
            raise SplidError("a SPLID needs at least one division")
        if divs[0] != 1:
            raise SplidError(f"document root division must be 1, got {divs[0]}")
        for d in divs[1:]:
            if d < 1:
                raise SplidError(f"division values must be >= 1, got {d}")
        if divs[-1] % 2 == 0:
            raise SplidError(
                f"a SPLID must end with an odd division, got {divs!r}"
            )
        self._divisions = divs

    # -- construction ------------------------------------------------------

    @classmethod
    def root(cls) -> "Splid":
        """The label of the document root element, ``1``."""
        return cls((1,))

    @classmethod
    def parse(cls, text: str) -> "Splid":
        """Parse the dotted notation used throughout the paper, e.g.
        ``"1.3.4.3"``."""
        try:
            divisions = tuple(int(part) for part in text.split("."))
        except ValueError as exc:
            raise SplidError(f"malformed SPLID text {text!r}") from exc
        return cls(divisions)

    # -- basic accessors ---------------------------------------------------

    @property
    def divisions(self) -> Tuple[int, ...]:
        """The raw division tuple."""
        return self._divisions

    @property
    def level(self) -> int:
        """Tree level of the labeled node; the document root is level 0.

        The level is the number of odd divisions minus one -- even
        (overflow) divisions do not open a level.
        """
        return sum(1 for d in self._divisions if d % 2 == 1) - 1

    @property
    def is_root(self) -> bool:
        return self._divisions == (1,)

    @property
    def is_meta(self) -> bool:
        """True for attribute-root and string-node labels (division 1)."""
        return len(self._divisions) > 1 and self._divisions[-1] == META_DIVISION

    # -- tree relationships ------------------------------------------------

    @property
    def parent(self) -> Optional["Splid"]:
        """The SPLID of the parent node, or ``None`` for the root.

        The final (odd) division is removed together with any overflow
        (even) divisions in front of it, so the result again ends with an
        odd division.
        """
        if self.is_root:
            return None
        divs = list(self._divisions[:-1])
        while divs and divs[-1] % 2 == 0:
            divs.pop()
        return Splid(divs)

    def ancestors(self) -> Iterator["Splid"]:
        """Yield the ancestor labels from the parent up to the root.

        This is the operation the paper calls performance-critical for
        intention locking: it needs *no* document access.
        """
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def ancestors_bottom_up(self) -> Tuple["Splid", ...]:
        """All ancestors, parent first, root last (materialized)."""
        return tuple(self.ancestors())

    def ancestors_top_down(self) -> Tuple["Splid", ...]:
        """All ancestors, root first, parent last."""
        return tuple(reversed(tuple(self.ancestors())))

    def ancestor_at_level(self, level: int) -> "Splid":
        """The ancestor-or-self label at the given tree level.

        Raises :class:`SplidError` if this node is above ``level``.  Used by
        the lock-depth mechanism: accesses below lock depth *n* are covered
        by a subtree lock on the level-*n* ancestor.
        """
        own = self.level
        if level > own:
            raise SplidError(
                f"{self} is at level {own}, cannot take ancestor at {level}"
            )
        if level == own:
            return self
        node = self
        while node.level > level:
            node = node.parent  # type: ignore[assignment]  # never root here
        return node

    def is_ancestor_of(self, other: "Splid") -> bool:
        """Strict ancestor test via prefix comparison (no document access)."""
        mine = self._divisions
        theirs = other._divisions
        return len(mine) < len(theirs) and theirs[: len(mine)] == mine

    def is_descendant_of(self, other: "Splid") -> bool:
        return other.is_ancestor_of(self)

    def is_self_or_descendant_of(self, other: "Splid") -> bool:
        return self == other or other.is_ancestor_of(self)

    def common_ancestor(self, other: "Splid") -> "Splid":
        """The lowest common ancestor-or-self of two labels."""
        mine = self._divisions
        theirs = other._divisions
        shared = 0
        for a, b in zip(mine, theirs):
            if a != b:
                break
            shared += 1
        divs = list(mine[:shared])
        while divs and divs[-1] % 2 == 0:
            divs.pop()
        if not divs:
            raise SplidError("labels do not share the document root")
        return Splid(divs)

    def child(self, division: int) -> "Splid":
        """Append a single (odd) division, producing a child label."""
        if division % 2 == 0:
            raise SplidError("child labels must use an odd division")
        return Splid(self._divisions + (division,))

    def with_suffix(self, suffix: Sequence[int]) -> "Splid":
        """Append a division suffix (used by the allocator)."""
        return Splid(self._divisions + tuple(suffix))

    @property
    def attribute_root(self) -> "Splid":
        """Label of this element's attribute root (division 1 child)."""
        return Splid(self._divisions + (META_DIVISION,))

    @property
    def string_node(self) -> "Splid":
        """Label of the string node below a text or attribute node."""
        return Splid(self._divisions + (META_DIVISION,))

    def local_suffix(self, ancestor: "Splid") -> Tuple[int, ...]:
        """The division suffix of this label below ``ancestor``."""
        if not ancestor.is_ancestor_of(self):
            raise SplidError(f"{ancestor} is not an ancestor of {self}")
        return self._divisions[len(ancestor._divisions):]

    # -- ordering / identity -----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Splid):
            return NotImplemented
        return self._divisions == other._divisions

    def __lt__(self, other: "Splid") -> bool:
        if not isinstance(other, Splid):
            return NotImplemented
        return self._divisions < other._divisions

    def __hash__(self) -> int:
        return hash(self._divisions)

    def __str__(self) -> str:
        return ".".join(str(d) for d in self._divisions)

    def __repr__(self) -> str:
        return f"Splid({self})"


def document_order(labels: Sequence[Splid]) -> list:
    """Return the labels sorted in document order (convenience helper)."""
    return sorted(labels)
