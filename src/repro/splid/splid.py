"""Stable path labeling identifiers (SPLIDs).

SPLIDs are the prefix-based (Dewey / ORDPATH-style) node labels described in
Section 3.2 of the paper.  A SPLID is a sequence of integer *divisions*:

* the label of a node contains the label of its parent as a prefix;
* **odd** division values indicate a level transition;
* **even** division values are an overflow mechanism for labels inserted
  between existing siblings (they do not add a level);
* division value ``1`` at levels below the root labels the *virtually
  expanded* nodes of the taDOM storage model: attribute roots and string
  nodes (where sibling order does not matter).

Examples from the paper: ``1.3.3`` and ``1.3.5`` are consecutive nodes at
level 3; a node inserted between them receives ``1.3.4.3``.  Levels are
obtained by counting odd divisions, document order by plain division-wise
comparison, and the ancestor labels by truncating divisions -- all without
touching the stored document, which is what makes intention locking along
the ancestor path cheap.

The paper calls ancestor derivation performance-critical for intention
locking, so the value type is engineered as a hot-path kernel:

* instances are **interned** through a bounded canonicalizing cache keyed
  by the division tuple, so the labels a workload keeps re-deriving
  (ancestor paths, lock anchors) are materialized exactly once;
* ``level``, the hash, the ``parent`` link, and the full ancestor chain
  are **memoized** on the instance (``__slots__``-backed lazy fields) --
  the first ancestor walk pays O(depth), every later one is a tuple read;
* ``ancestor_at_level`` indexes the cached chain (each parent step drops
  exactly one level), turning the old per-call reparse into O(1) after
  the chain exists;
* derivations whose result is valid *by construction* (``parent``,
  ``child``, ``with_suffix``, codec decodes) use a trusted constructor
  that skips re-validation entirely.

This module implements the label value type.  Allocation of new labels
(including the ``dist`` gap parameter) lives in
:mod:`repro.splid.allocator`; order-preserving byte encoding in
:mod:`repro.splid.codec`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import SplidError

#: Division value reserved for attribute roots and string nodes.
META_DIVISION = 1

#: Bound on the canonicalizing cache.  Eviction is FIFO in insertion
#: order; evicted labels keep working (equality and hashing are by
#: value), they just stop being canonical.
INTERN_CAPACITY = 1 << 16
_EVICT_BATCH = 1 << 10

#: division tuple -> canonical instance.  Plain dict: reads and writes
#: are GIL-atomic, and a lost race merely creates a short-lived duplicate
#: that compares equal to the canonical instance.
_INTERN: Dict[Tuple[int, ...], "Splid"] = {}

_UNSET = object()  # sentinel: ``None`` is a valid parent (the root's)


class Splid:
    """An immutable, order-comparable stable path labeling identifier.

    Instances are hashable and compare in *document order*: ancestors sort
    before their descendants, and siblings sort by their division values.
    """

    __slots__ = ("_divisions", "_hash", "_level", "_parent", "_ancestors")

    def __new__(cls, divisions: Sequence[int]):
        if type(divisions) is tuple:
            cached = _INTERN.get(divisions)
            if cached is not None:
                return cached
        divs = tuple(int(d) for d in divisions)
        cached = _INTERN.get(divs)
        if cached is not None:
            return cached
        if not divs:
            raise SplidError("a SPLID needs at least one division")
        if divs[0] != 1:
            raise SplidError(f"document root division must be 1, got {divs[0]}")
        for d in divs[1:]:
            if d < 1:
                raise SplidError(f"division values must be >= 1, got {d}")
        if divs[-1] % 2 == 0:
            raise SplidError(
                f"a SPLID must end with an odd division, got {divs!r}"
            )
        return cls._new_interned(divs)

    # -- construction ------------------------------------------------------

    @classmethod
    def _new_interned(cls, divs: Tuple[int, ...]) -> "Splid":
        self = object.__new__(cls)
        self._divisions = divs
        self._hash = hash(divs)
        self._level = None
        self._parent = _UNSET
        self._ancestors = None
        if len(_INTERN) >= INTERN_CAPACITY:
            evict = iter(_INTERN)
            for key in [next(evict) for _ in range(_EVICT_BATCH)]:
                del _INTERN[key]
        _INTERN[divs] = self
        return self

    @classmethod
    def _from_divisions(cls, divs: Tuple[int, ...]) -> "Splid":
        """Trusted constructor: ``divs`` is already a valid division tuple
        (derived from an existing label or a verified decode)."""
        cached = _INTERN.get(divs)
        if cached is not None:
            return cached
        return cls._new_interned(divs)

    @classmethod
    def root(cls) -> "Splid":
        """The label of the document root element, ``1``."""
        return cls._from_divisions((1,))

    @classmethod
    def parse(cls, text: str) -> "Splid":
        """Parse the dotted notation used throughout the paper, e.g.
        ``"1.3.4.3"``.

        Parsing is strict: every division must be a plain run of ASCII
        digits, so ``"1."`` (empty division), ``" 1.3"`` (whitespace) and
        ``"1.+3"`` (sign) are rejected rather than silently normalized.
        """
        divisions = []
        for part in text.split("."):
            if not (part.isascii() and part.isdigit()):
                raise SplidError(
                    f"malformed SPLID text {text!r}: bad division {part!r}"
                )
            divisions.append(int(part))
        return cls(tuple(divisions))

    # -- interning introspection ------------------------------------------

    @classmethod
    def intern_info(cls) -> Dict[str, int]:
        """Size/capacity of the canonicalizing cache (for tests/benchmarks)."""
        return {"size": len(_INTERN), "capacity": INTERN_CAPACITY}

    @classmethod
    def clear_intern_cache(cls) -> None:
        """Drop all canonical instances (tests and memory pressure)."""
        _INTERN.clear()

    # -- basic accessors ---------------------------------------------------

    @property
    def divisions(self) -> Tuple[int, ...]:
        """The raw division tuple."""
        return self._divisions

    @property
    def level(self) -> int:
        """Tree level of the labeled node; the document root is level 0.

        The level is the number of odd divisions minus one -- even
        (overflow) divisions do not open a level.  Memoized.
        """
        level = self._level
        if level is None:
            level = sum(d & 1 for d in self._divisions) - 1
            self._level = level
        return level

    @property
    def is_root(self) -> bool:
        return self._divisions == (1,)

    @property
    def is_meta(self) -> bool:
        """True for attribute-root and string-node labels (division 1)."""
        return len(self._divisions) > 1 and self._divisions[-1] == META_DIVISION

    # -- tree relationships ------------------------------------------------

    @property
    def parent(self) -> Optional["Splid"]:
        """The SPLID of the parent node, or ``None`` for the root.

        The final (odd) division is removed together with any overflow
        (even) divisions in front of it, so the result again ends with an
        odd division.  Memoized; the result is interned.
        """
        parent = self._parent
        if parent is _UNSET:
            divs = self._divisions
            if divs == (1,):
                parent = None
            else:
                end = len(divs) - 1
                while divs[end - 1] % 2 == 0:
                    end -= 1
                parent = Splid._from_divisions(divs[:end])
            self._parent = parent
        return parent

    def _ancestor_chain(self) -> Tuple["Splid", ...]:
        """The memoized ancestor chain, parent first, root last."""
        chain = self._ancestors
        if chain is None:
            parent = self.parent
            chain = () if parent is None else (parent,) + parent._ancestor_chain()
            self._ancestors = chain
        return chain

    def ancestors(self) -> Iterator["Splid"]:
        """Yield the ancestor labels from the parent up to the root.

        This is the operation the paper calls performance-critical for
        intention locking: it needs *no* document access (and, after the
        first call, no computation either).
        """
        return iter(self._ancestor_chain())

    def ancestors_bottom_up(self) -> Tuple["Splid", ...]:
        """All ancestors, parent first, root last (materialized)."""
        return self._ancestor_chain()

    def ancestors_top_down(self) -> Tuple["Splid", ...]:
        """All ancestors, root first, parent last."""
        return tuple(reversed(self._ancestor_chain()))

    def ancestor_at_level(self, level: int) -> "Splid":
        """The ancestor-or-self label at the given tree level.

        Raises :class:`SplidError` if this node is above ``level``.  Used by
        the lock-depth mechanism: accesses below lock depth *n* are covered
        by a subtree lock on the level-*n* ancestor.

        Each parent step removes exactly one odd division, so the cached
        ancestor chain is indexed directly: O(1) once the chain exists.
        """
        own = self.level
        if level > own:
            raise SplidError(
                f"{self} is at level {own}, cannot take ancestor at {level}"
            )
        if level == own:
            return self
        return self._ancestor_chain()[own - 1 - level]

    def is_ancestor_of(self, other: "Splid") -> bool:
        """Strict ancestor test via prefix comparison (no document access)."""
        mine = self._divisions
        theirs = other._divisions
        return len(mine) < len(theirs) and theirs[: len(mine)] == mine

    def is_descendant_of(self, other: "Splid") -> bool:
        return other.is_ancestor_of(self)

    def is_self_or_descendant_of(self, other: "Splid") -> bool:
        return self is other or self == other or other.is_ancestor_of(self)

    def common_ancestor(self, other: "Splid") -> "Splid":
        """The lowest common ancestor-or-self of two labels."""
        mine = self._divisions
        theirs = other._divisions
        shared = 0
        for a, b in zip(mine, theirs):
            if a != b:
                break
            shared += 1
        while shared and mine[shared - 1] % 2 == 0:
            shared -= 1
        if not shared:
            raise SplidError("labels do not share the document root")
        return Splid._from_divisions(mine[:shared])

    def child(self, division: int) -> "Splid":
        """Append a single (odd) division, producing a child label."""
        division = int(division)
        if division % 2 == 0:
            raise SplidError("child labels must use an odd division")
        if division < 1:
            raise SplidError(f"division values must be >= 1, got {division}")
        return Splid._from_divisions(self._divisions + (division,))

    def with_suffix(self, suffix: Sequence[int]) -> "Splid":
        """Append a division suffix (used by the allocator)."""
        tail = tuple(int(d) for d in suffix)
        if not tail:
            return self
        for d in tail:
            if d < 1:
                raise SplidError(f"division values must be >= 1, got {d}")
        if tail[-1] % 2 == 0:
            raise SplidError(
                f"a SPLID must end with an odd division, got "
                f"{self._divisions + tail!r}"
            )
        return Splid._from_divisions(self._divisions + tail)

    @property
    def attribute_root(self) -> "Splid":
        """Label of this element's attribute root (division 1 child)."""
        return Splid._from_divisions(self._divisions + (META_DIVISION,))

    @property
    def string_node(self) -> "Splid":
        """Label of the string node below a text or attribute node."""
        return Splid._from_divisions(self._divisions + (META_DIVISION,))

    def local_suffix(self, ancestor: "Splid") -> Tuple[int, ...]:
        """The division suffix of this label below ``ancestor``."""
        if not ancestor.is_ancestor_of(self):
            raise SplidError(f"{ancestor} is not an ancestor of {self}")
        return self._divisions[len(ancestor._divisions):]

    # -- ordering / identity -----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Splid):
            return NotImplemented
        return self._divisions == other._divisions

    def __ne__(self, other: object) -> bool:
        if self is other:
            return False
        if not isinstance(other, Splid):
            return NotImplemented
        return self._divisions != other._divisions

    def __lt__(self, other: "Splid") -> bool:
        if not isinstance(other, Splid):
            return NotImplemented
        return self._divisions < other._divisions

    def __le__(self, other: "Splid") -> bool:
        if not isinstance(other, Splid):
            return NotImplemented
        return self._divisions <= other._divisions

    def __gt__(self, other: "Splid") -> bool:
        if not isinstance(other, Splid):
            return NotImplemented
        return self._divisions > other._divisions

    def __ge__(self, other: "Splid") -> bool:
        if not isinstance(other, Splid):
            return NotImplemented
        return self._divisions >= other._divisions

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return ".".join(map(str, self._divisions))

    def __repr__(self) -> str:
        return f"Splid({self})"

    def __reduce__(self):
        # Re-enter the interning constructor on unpickle (cached lazy
        # fields are recomputed, not shipped).
        return (Splid, (self._divisions,))


def document_order(labels: Sequence[Splid]) -> list:
    """Return the labels sorted in document order (convenience helper)."""
    return sorted(labels)
