"""Transaction manager: begin/commit/abort with undo-based rollback.

Commit releases all locks (the paper's "release locks at commit for
isolation level repeatable read").  Abort first applies the undo log in
reverse order against the raw document -- while still holding every lock,
so rollback is isolated -- and then releases.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dom.document import Document
from repro.errors import TransactionError
from repro.locking.lock_manager import IsolationLevel, LockManager
from repro.txn.transaction import Transaction, TxnState


class TransactionManager:
    """Transaction lifecycle for one database instance."""

    def __init__(
        self,
        document: Document,
        lock_manager: LockManager,
        *,
        clock: Optional[Callable[[], float]] = None,
        wal=None,
    ):
        self.document = document
        self.lock_manager = lock_manager
        self.wal = wal
        self._clock = clock or (lambda: 0.0)
        self._active: Dict[int, Transaction] = {}
        self.committed: int = 0
        self.aborted: int = 0

    # -- lifecycle ----------------------------------------------------------

    def begin(
        self,
        name: str = "txn",
        isolation: "IsolationLevel | str" = IsolationLevel.REPEATABLE,
    ) -> Transaction:
        txn = Transaction(
            name, IsolationLevel.parse(isolation), start_time=self._clock()
        )
        self._active[txn.txn_id] = txn
        if self.wal is not None:
            self.wal.log_begin(txn.txn_id)
        return txn

    def commit(self, txn: Transaction) -> None:
        txn.require_active()
        if self.wal is not None:
            # Write-ahead discipline: the COMMIT record precedes releases.
            self.wal.log_commit(txn.txn_id)
        self.lock_manager.release_transaction(txn)
        txn.state = TxnState.COMMITTED
        txn.end_time = self._clock()
        txn.undo_log.clear()
        self._active.pop(txn.txn_id, None)
        self.committed += 1

    def abort(self, txn: Transaction) -> None:
        if txn.state is TxnState.ABORTED:
            return
        txn.require_active()
        self._rollback(txn)
        if self.wal is not None:
            self.wal.log_abort(txn.txn_id)
        self.lock_manager.release_transaction(txn)
        txn.state = TxnState.ABORTED
        txn.end_time = self._clock()
        self._active.pop(txn.txn_id, None)
        self.aborted += 1

    # -- introspection ----------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    def active_transactions(self) -> List[Transaction]:
        return list(self._active.values())

    # -- internals -----------------------------------------------------------------

    def _rollback(self, txn: Transaction) -> None:
        """Apply the undo log backwards against the raw document."""
        for kind, payload in reversed(txn.undo_log):
            if kind == "insert":
                if self.document.exists(payload):
                    self.document.delete_subtree(payload)
            elif kind == "delete":
                self.document.restore_subtree(payload)
            elif kind == "content":
                splid, old = payload
                self.document.update_string(splid, old)
            elif kind == "rename":
                splid, old = payload
                self.document.rename_element(splid, old)
            else:
                raise TransactionError(f"unknown undo entry {kind!r}")
        txn.undo_log.clear()
