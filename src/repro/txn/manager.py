"""Transaction manager: begin/commit/abort with undo-based rollback.

Commit releases all locks (the paper's "release locks at commit for
isolation level repeatable read").  Abort first applies the undo log in
reverse order against the raw document -- while still holding every lock,
so rollback is isolated -- and then releases.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dom.document import Document
from repro.errors import RollbackError, TransactionError, TransientError
from repro.locking.lock_manager import IsolationLevel, LockManager
from repro.obs import (
    Observability,
    SPAN_BEGIN,
    SPAN_END,
    TXN_ABORT,
    TXN_BEGIN,
    TXN_COMMIT,
)
from repro.txn.transaction import Transaction, TxnState


class TransactionManager:
    """Transaction lifecycle for one database instance."""

    def __init__(
        self,
        document: Document,
        lock_manager: LockManager,
        *,
        clock: Optional[Callable[[], float]] = None,
        wal=None,
        obs: Optional[Observability] = None,
    ):
        self.document = document
        self.lock_manager = lock_manager
        self.wal = wal
        self.obs = obs if obs is not None else Observability.disabled()
        self.tracer = self.obs.tracer
        self._clock = clock or (lambda: 0.0)
        self._active: Dict[int, Transaction] = {}
        self._begun: int = 0
        self.committed: int = 0
        self.aborted: int = 0
        self.aborted_by_reason: Dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------

    def begin(
        self,
        name: str = "txn",
        isolation: "IsolationLevel | str" = IsolationLevel.REPEATABLE,
    ) -> Transaction:
        txn = Transaction(
            name, IsolationLevel.parse(isolation), start_time=self._clock()
        )
        self._begun += 1
        # Per-manager label: Transaction's own id is a process-global
        # counter, which would make otherwise-identical traces differ.
        txn.label = f"T{self._begun}:{name}"
        self._active[txn.txn_id] = txn
        if self.wal is not None:
            self.wal.log_begin(txn.txn_id)
        if self.tracer.enabled:
            self.tracer.emit(
                TXN_BEGIN, txn=txn.label, name=name,
                isolation=txn.isolation.value,
            )
        return txn

    def commit(self, txn: Transaction) -> None:
        txn.require_active()
        if self.wal is not None:
            # Write-ahead discipline: the COMMIT record precedes releases.
            self.wal.log_commit(txn.txn_id)
        self.lock_manager.release_transaction(txn)
        txn.state = TxnState.COMMITTED
        txn.end_time = self._clock()
        txn.undo_log.clear()
        self._active.pop(txn.txn_id, None)
        self.committed += 1
        self.obs.metrics.counter("txn.committed").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                TXN_COMMIT, txn=txn.label, name=txn.name,
                duration_ms=round(txn.duration or 0.0, 6),
            )

    def abort(self, txn: Transaction, *, reason: str = "rollback") -> None:
        """Roll back and finish ``txn``.

        ``reason`` distinguishes the paper's abort causes -- ``deadlock``
        (victim choice), ``timeout`` (lock-wait timeout), or an explicit
        application ``rollback`` -- and lands in both the metrics registry
        and the trace.

        Rollback is all-or-nothing: undo entries that fail transiently
        (injected storage faults) are retried a bounded number of times;
        if an entry cannot be undone, :class:`~repro.errors.RollbackError`
        is raised and the transaction stays ACTIVE with all locks held --
        the document is never left half-rolled-back and unprotected.
        """
        if txn.state is TxnState.ABORTED:
            return
        txn.require_active()
        self._rollback(txn)
        if self.wal is not None:
            self.wal.log_abort(txn.txn_id)
        self.lock_manager.release_transaction(txn)
        txn.state = TxnState.ABORTED
        txn.abort_reason = reason
        txn.end_time = self._clock()
        self._active.pop(txn.txn_id, None)
        self.aborted += 1
        self.aborted_by_reason[reason] = self.aborted_by_reason.get(reason, 0) + 1
        self.obs.metrics.counter("txn.aborted").inc()
        self.obs.metrics.counter(f"txn.aborted.{reason}").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                TXN_ABORT, txn=txn.label, name=txn.name, reason=reason,
                duration_ms=round(txn.duration or 0.0, 6),
            )

    # -- introspection ----------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    def active_transactions(self) -> List[Transaction]:
        return list(self._active.values())

    # -- internals -----------------------------------------------------------------

    def _rollback(self, txn: Transaction) -> None:
        """Apply the undo log backwards against the raw document."""
        trace = self.tracer.enabled
        if trace:
            self.tracer.emit(
                SPAN_BEGIN, txn=txn.label, cat="txn", name="rollback",
                undo_entries=len(txn.undo_log),
            )
        try:
            self._apply_undo(txn)
        finally:
            # Rollback runs synchronously (no yields), so this ``finally``
            # cannot fire from a garbage-collected generator frame.
            if trace:
                self.tracer.emit(
                    SPAN_END, txn=txn.label, cat="txn", name="rollback",
                )

    #: Attempts per undo entry before rollback gives up on a transient
    #: fault.  Undo entries are idempotent (restore re-puts the same
    #: SPLIDs, delete is existence-guarded, content/rename set absolute
    #: values), so re-running a partially applied entry is safe.
    UNDO_RETRY_ATTEMPTS = 3

    def _apply_undo(self, txn: Transaction) -> None:
        for kind, payload in reversed(txn.undo_log):
            self._undo_entry(kind, payload)
        txn.undo_log.clear()

    def _undo_entry(self, kind: str, payload) -> None:
        for attempt in range(1, self.UNDO_RETRY_ATTEMPTS + 1):
            try:
                self._undo_once(kind, payload)
                return
            except TransientError as exc:
                if attempt == self.UNDO_RETRY_ATTEMPTS:
                    raise RollbackError(
                        f"undo of {kind!r} still failing after "
                        f"{attempt} attempts: {exc}"
                    ) from exc
            except TransactionError:
                raise
            except Exception as exc:
                raise RollbackError(f"undo of {kind!r} failed: {exc}") from exc

    def _undo_once(self, kind: str, payload) -> None:
        if kind == "insert":
            if self.document.exists(payload):
                self.document.delete_subtree(payload)
        elif kind == "delete":
            self.document.restore_subtree(payload)
        elif kind == "content":
            splid, old = payload
            self.document.update_string(splid, old)
        elif kind == "rename":
            splid, old = payload
            self.document.rename_element(splid, old)
        else:
            raise TransactionError(f"unknown undo entry {kind!r}")
