"""Transactions: identity, isolation, statistics, and the undo log."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, List, Optional, Tuple

from repro.errors import TransactionError
from repro.locking.lock_manager import IsolationLevel


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TransactionStats:
    """Per-transaction counters feeding the TaMix metrics."""

    operations: int = 0
    lock_requests: int = 0
    covered_skips: int = 0
    blocked_waits: int = 0
    fanout_locks: int = 0
    logical_reads: int = 0
    physical_reads: int = 0
    nodes_visited: int = 0


#: Undo-log entry: (kind, payload).  Kinds:
#:   ("insert", splid)            -- delete the inserted subtree on undo
#:   ("delete", entries)          -- restore_subtree(entries) on undo
#:   ("content", (splid, old))    -- put the old string back on undo
#:   ("rename", (splid, old))     -- rename back on undo
UndoEntry = Tuple[str, Any]


class Transaction:
    """One ACID transaction inside the XDBMS."""

    _counter = 0

    def __init__(
        self,
        name: str = "txn",
        isolation: IsolationLevel = IsolationLevel.REPEATABLE,
        start_time: float = 0.0,
    ):
        Transaction._counter += 1
        self.txn_id = Transaction._counter
        self.name = name
        self.isolation = isolation
        self.state = TxnState.ACTIVE
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.stats = TransactionStats()
        self.undo_log: List[UndoEntry] = []
        #: Why the transaction aborted ("deadlock", "timeout",
        #: "rollback", ...); None while it has not aborted.  The session
        #: layer maps it back to the typed TransactionAborted subclass.
        self.abort_reason: Optional[str] = None
        #: Stable trace identity: state-independent, and re-assigned by the
        #: transaction manager to a per-database sequence so traces from
        #: identical runs are byte-for-byte diffable.
        self.label = f"T{self.txn_id}:{name}"

    # -- bookkeeping -------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(f"{self} is {self.state.value}")

    def log_undo(self, kind: str, payload: Any) -> None:
        self.undo_log.append((kind, payload))

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __hash__(self) -> int:
        return self.txn_id

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"<T{self.txn_id} {self.name} {self.state.value}>"
