"""Transactions: lifecycle, isolation levels, undo-based rollback."""

from repro.locking.lock_manager import IsolationLevel
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction, TransactionStats, TxnState

__all__ = [
    "IsolationLevel",
    "Transaction",
    "TransactionManager",
    "TransactionStats",
    "TxnState",
]
