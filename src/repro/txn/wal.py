"""Write-ahead logging and crash recovery.

The paper requires the XDBMS to "guarantee ACID properties" for every XDP
interface; atomicity comes from the undo log, isolation from the lock
protocols -- this module supplies durability:

* :class:`WriteAheadLog` -- an append-only, byte-serializable log of
  logical operation records (insert / delete / content / rename) framed
  by BEGIN/COMMIT/ABORT;
* :func:`take_checkpoint` / :func:`restore_checkpoint` -- a physical
  snapshot of a document: the exact (SPLID, record) pairs plus the
  vocabulary, so recovered labels are bit-identical (re-parsing XML would
  re-allocate overflow labels and break logical redo);
* :func:`recover` -- checkpoint + log -> committed state: replay the
  operations of *winner* transactions in LSN order; losers (aborted or
  in-flight at the crash) are simply not redone.

The log is deliberately logical: records carry enough to redo (new state)
and to audit (old state), mirroring the classic ARIES-style split without
page-level physiology -- appropriate for the node-granular store.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dom.document import Document
from repro.errors import StorageError
from repro.splid import Splid, decode, encode
from repro.storage.record import NodeRecord


class LogKind(IntEnum):
    BEGIN = 1
    COMMIT = 2
    ABORT = 3
    INSERT = 4      # payload: the logged nodes of a new subtree
    DELETE = 5      # payload: the logged nodes of the removed subtree
    CONTENT = 6     # payload: splid, old text, new text
    RENAME = 7      # payload: splid, old name, new name


@dataclass(frozen=True)
class LoggedNode:
    """One node in a logged subtree, *self-contained*.

    Names are stored as strings, never as vocabulary surrogates: names
    interned after the checkpoint would be unknown at recovery time.
    """

    splid: Splid
    kind: int                    # NodeKind value
    name: Optional[str] = None   # element/attribute tag name
    text: Optional[str] = None   # string-node content


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    kind: LogKind
    txn_id: int
    #: Subtree entries for INSERT/DELETE.
    entries: Tuple[LoggedNode, ...] = ()
    #: Target node for CONTENT/RENAME.
    target: Optional[Splid] = None
    old: str = ""
    new: str = ""


def _freeze_entries(document: Document, entries) -> Tuple[LoggedNode, ...]:
    """Convert (splid, NodeRecord) pairs into self-contained log nodes."""
    from repro.storage.record import NO_NAME

    frozen = []
    for splid, record in entries:
        name = None
        if record.name_surrogate != NO_NAME:
            name = document.vocabulary.name_of(record.name_surrogate)
        frozen.append(LoggedNode(
            splid, int(record.kind), name, record.text_content
        ))
    return tuple(frozen)


def _thaw_entries(
    document: Document, entries: Sequence[LoggedNode]
) -> List[Tuple[Splid, NodeRecord]]:
    """Rebuild (splid, NodeRecord) pairs against the recovering document,
    interning names as needed."""
    from repro.storage.record import NO_NAME, NodeKind

    thawed = []
    for node in entries:
        surrogate = NO_NAME
        if node.name is not None:
            surrogate = document.vocabulary.intern(node.name)
        content = b"" if node.text is None else node.text.encode("utf-8")
        thawed.append(
            (node.splid, NodeRecord(NodeKind(node.kind), surrogate, content))
        )
    return thawed


class WriteAheadLog:
    """Append-only log with byte serialization.

    Operation payloads are logged through :meth:`log_insert` /
    :meth:`log_delete` with the owning document, so name surrogates are
    resolved to strings on the way in.
    """

    def __init__(self):
        self._records: List[LogRecord] = []
        #: Cheap counters for the metrics registry (see
        #: :meth:`collect_metrics`): total appends, appends per record
        #: kind, and "flushes" -- the WAL is in-memory, so a flush is the
        #: write-ahead barrier taken at each COMMIT record.
        self.appends: int = 0
        self.flushes: int = 0
        self.appends_by_kind: Dict[LogKind, int] = {}

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Tuple[LogRecord, ...]:
        return tuple(self._records)

    @property
    def last_lsn(self) -> int:
        return len(self._records)

    # -- appends -------------------------------------------------------------

    def _append(self, kind: LogKind, txn_id: int, **fields) -> LogRecord:
        record = LogRecord(len(self._records) + 1, kind, txn_id, **fields)
        self._records.append(record)
        self._count(kind)
        return record

    def _count(self, kind: LogKind) -> None:
        self.appends += 1
        self.appends_by_kind[kind] = self.appends_by_kind.get(kind, 0) + 1

    def log_begin(self, txn_id: int) -> LogRecord:
        return self._append(LogKind.BEGIN, txn_id)

    def log_commit(self, txn_id: int) -> LogRecord:
        record = self._append(LogKind.COMMIT, txn_id)
        # Write-ahead barrier: a commit record must be durable before the
        # transaction's locks are released.
        self.flushes += 1
        return record

    def log_abort(self, txn_id: int) -> LogRecord:
        return self._append(LogKind.ABORT, txn_id)

    def log_insert(
        self,
        txn_id: int,
        entries: Sequence[Tuple[Splid, NodeRecord]],
        document: Document,
    ) -> LogRecord:
        return self._append(
            LogKind.INSERT, txn_id, entries=_freeze_entries(document, entries)
        )

    def log_delete(
        self,
        txn_id: int,
        entries: Sequence[Tuple[Splid, NodeRecord]],
        document: Document,
    ) -> LogRecord:
        return self._append(
            LogKind.DELETE, txn_id, entries=_freeze_entries(document, entries)
        )

    def log_content(
        self, txn_id: int, target: Splid, old: str, new: str
    ) -> LogRecord:
        return self._append(
            LogKind.CONTENT, txn_id, target=target, old=old, new=new
        )

    def log_rename(
        self, txn_id: int, target: Splid, old: str, new: str
    ) -> LogRecord:
        return self._append(
            LogKind.RENAME, txn_id, target=target, old=old, new=new
        )

    # -- metrics -------------------------------------------------------------

    def collect_metrics(self, registry) -> None:
        """Snapshot-time collector for a :class:`MetricsRegistry`."""
        registry.gauge("wal.appends").set(self.appends)
        registry.gauge("wal.flushes").set(self.flushes)
        registry.gauge("wal.last_lsn").set(self.last_lsn)
        for kind, count in self.appends_by_kind.items():
            registry.gauge(f"wal.records.{kind.name.lower()}").set(count)

    # -- serialization ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the whole log (the 'disk' image)."""
        out = io.BytesIO()
        for record in self._records:
            _write_record(out, record)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "WriteAheadLog":
        log = cls()
        stream = io.BytesIO(data)
        while True:
            record = _read_record(stream, len(log._records) + 1)
            if record is None:
                break
            log._records.append(record)
            # Rebuild the metrics counters the byte image does not carry;
            # otherwise a recovered log reports appends == 0 and the
            # post-recovery ``wal.*`` gauges lie.
            log._count(record.kind)
            if record.kind is LogKind.COMMIT:
                log.flushes += 1
        return log

    def prefix(self, last_lsn: int) -> bytes:
        """Byte image of the log truncated after ``last_lsn``.

        This is the 'disk' a crash at LSN boundary ``last_lsn`` leaves
        behind: every record with ``lsn <= last_lsn``, nothing after.
        Used by the fault-injection harness to simulate crashes between
        appends.
        """
        out = io.BytesIO()
        for record in self._records[:last_lsn]:
            _write_record(out, record)
        return out.getvalue()


def _write_str(out: io.BytesIO, text: str) -> None:
    raw = text.encode("utf-8")
    out.write(struct.pack(">I", len(raw)))
    out.write(raw)


def _read_str(stream: io.BytesIO) -> str:
    (length,) = struct.unpack(">I", _read_exact(stream, 4))
    return _read_exact(stream, length).decode("utf-8")


def _read_exact(stream: io.BytesIO, size: int) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise StorageError("truncated log record")
    return data


def _write_record(out: io.BytesIO, record: LogRecord) -> None:
    out.write(struct.pack(">BQ", record.kind, record.txn_id))
    out.write(struct.pack(">I", len(record.entries)))
    for node in record.entries:
        key = encode(node.splid)
        out.write(struct.pack(">HB", len(key), node.kind))
        out.write(key)
        _write_str(out, "" if node.name is None else "\x00" + node.name)
        _write_str(out, "" if node.text is None else "\x00" + node.text)
    target = b"" if record.target is None else encode(record.target)
    out.write(struct.pack(">H", len(target)))
    out.write(target)
    _write_str(out, record.old)
    _write_str(out, record.new)


def _read_optional_str(stream: io.BytesIO) -> Optional[str]:
    raw = _read_str(stream)
    return raw[1:] if raw.startswith("\x00") else None


def _read_record(stream: io.BytesIO, lsn: int) -> Optional[LogRecord]:
    header = stream.read(9)
    if not header:
        return None
    if len(header) != 9:
        raise StorageError("truncated log header")
    kind_value, txn_id = struct.unpack(">BQ", header)
    (entry_count,) = struct.unpack(">I", _read_exact(stream, 4))
    entries = []
    for _i in range(entry_count):
        key_len, node_kind = struct.unpack(">HB", _read_exact(stream, 3))
        splid = decode(_read_exact(stream, key_len))
        name = _read_optional_str(stream)
        text = _read_optional_str(stream)
        entries.append(LoggedNode(splid, node_kind, name, text))
    (target_len,) = struct.unpack(">H", _read_exact(stream, 2))
    target = decode(_read_exact(stream, target_len)) if target_len else None
    old = _read_str(stream)
    new = _read_str(stream)
    return LogRecord(
        lsn, LogKind(kind_value), txn_id,
        entries=tuple(entries), target=target, old=old, new=new,
    )


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------

@dataclass
class Checkpoint:
    """A physical snapshot: exact labels, records, and the vocabulary."""

    root_name: str
    names: Tuple[str, ...]
    entries: Tuple[Tuple[bytes, bytes], ...]
    #: LSN up to which the checkpoint already reflects the log.
    lsn: int = 0


def take_checkpoint(document: Document, log: Optional[WriteAheadLog] = None) -> Checkpoint:
    return Checkpoint(
        root_name=document.name_of(document.root),
        names=tuple(
            document.vocabulary.name_of(i)
            for i in range(len(document.vocabulary))
        ),
        entries=tuple(
            (encode(splid), record.encode())
            for splid, record in document.walk()
        ),
        lsn=0 if log is None else log.last_lsn,
    )


def checkpoint_to_bytes(checkpoint: Checkpoint) -> bytes:
    """Serialize a checkpoint (the on-disk database image)."""
    out = io.BytesIO()
    _write_str(out, checkpoint.root_name)
    out.write(struct.pack(">Q", checkpoint.lsn))
    out.write(struct.pack(">I", len(checkpoint.names)))
    for name in checkpoint.names:
        _write_str(out, name)
    out.write(struct.pack(">I", len(checkpoint.entries)))
    for key, value in checkpoint.entries:
        out.write(struct.pack(">HH", len(key), len(value)))
        out.write(key)
        out.write(value)
    return out.getvalue()


def checkpoint_from_bytes(data: bytes) -> Checkpoint:
    """Inverse of :func:`checkpoint_to_bytes`."""
    stream = io.BytesIO(data)
    root_name = _read_str(stream)
    (lsn,) = struct.unpack(">Q", _read_exact(stream, 8))
    (name_count,) = struct.unpack(">I", _read_exact(stream, 4))
    names = tuple(_read_str(stream) for _i in range(name_count))
    (entry_count,) = struct.unpack(">I", _read_exact(stream, 4))
    entries = []
    for _i in range(entry_count):
        key_len, value_len = struct.unpack(">HH", _read_exact(stream, 4))
        entries.append(
            (_read_exact(stream, key_len), _read_exact(stream, value_len))
        )
    return Checkpoint(root_name, names, tuple(entries), lsn)


def restore_checkpoint(checkpoint: Checkpoint) -> Document:
    document = Document(root_element=checkpoint.root_name)
    for name in checkpoint.names:
        document.vocabulary.intern(name)
    # Wipe the implicit root entry, then restore the exact image.
    document.element_index.remove(checkpoint.root_name, document.root)
    document.store.delete(document.root)
    entries = [
        (decode(key), NodeRecord.decode(value))
        for key, value in checkpoint.entries
    ]
    for splid, record in entries:
        document.store.put(splid, record)
    document._reindex(entries)  # rebuild element + ID indexes
    return document


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------

def winners_of(log: WriteAheadLog) -> Set[int]:
    """Transactions with a COMMIT record (everything else is a loser)."""
    return {
        record.txn_id for record in log.records()
        if record.kind is LogKind.COMMIT
    }


def recover(checkpoint: Checkpoint, log: WriteAheadLog) -> Document:
    """Checkpoint + log -> the committed state at the crash.

    Redo-only recovery: the checkpoint is a transaction-consistent or
    action-consistent base; the operations of winner transactions after
    the checkpoint LSN are replayed in log order.  Losers are skipped
    entirely (their effects are absent from the checkpoint by
    construction, or compensated by their recorded inverse operations --
    see :func:`recover_with_undo` for the fuzzy-checkpoint variant).
    """
    document = restore_checkpoint(checkpoint)
    winners = winners_of(log)
    for record in log.records():
        if record.lsn <= checkpoint.lsn:
            continue
        if record.txn_id not in winners:
            continue
        _redo(document, record)
    return document


def recover_with_undo(checkpoint: Checkpoint, log: WriteAheadLog) -> Document:
    """Fuzzy-checkpoint recovery: redo winners *and* undo losers.

    For checkpoints taken while transactions were in flight, loser
    operations recorded before the checkpoint may be reflected in it;
    this variant replays winners forward and then rolls losers back via
    the inverse of each of their logged operations, newest first.
    """
    document = restore_checkpoint(checkpoint)
    winners = winners_of(log)
    for record in log.records():
        if record.lsn <= checkpoint.lsn or record.txn_id not in winners:
            continue
        _redo(document, record)
    losers = [
        record for record in log.records()
        if record.txn_id not in winners and record.lsn <= checkpoint.lsn
    ]
    for record in reversed(losers):
        _undo(document, record)
    return document


def _redo(document: Document, record: LogRecord) -> None:
    if record.kind is LogKind.INSERT:
        document.restore_subtree(_thaw_entries(document, record.entries))
    elif record.kind is LogKind.DELETE:
        if record.entries and document.exists(record.entries[0].splid):
            document.delete_subtree(record.entries[0].splid)
    elif record.kind is LogKind.CONTENT:
        document.update_string(record.target, record.new)
    elif record.kind is LogKind.RENAME:
        document.rename_element(record.target, record.new)


def _undo(document: Document, record: LogRecord) -> None:
    if record.kind is LogKind.INSERT:
        if record.entries and document.exists(record.entries[0].splid):
            document.delete_subtree(record.entries[0].splid)
    elif record.kind is LogKind.DELETE:
        document.restore_subtree(_thaw_entries(document, record.entries))
    elif record.kind is LogKind.CONTENT:
        document.update_string(record.target, record.old)
    elif record.kind is LogKind.RENAME:
        document.rename_element(record.target, record.old)
