"""The database facade: one document, one protocol, one lock manager.

This is the public entry point a downstream user starts from::

    from repro import Database

    db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib")
    with db.session("reader") as session:
        book = session.run(session.nodes.get_element_by_id("b42"))
    # committed on clean exit, rolled back on exception

:meth:`Database.session` is the primary transaction API; ``begin`` /
``commit`` / ``abort`` remain as thin delegates for drivers that manage
lifecycles themselves.  ``Database.run`` drives an operation generator
synchronously (single-user convenience).  Concurrent workloads hand the
generators to a :class:`~repro.sched.simulator.Simulator` (see
:mod:`repro.tamix`) or to the threaded runtime instead.

Observability: pass ``observability=True`` (or a configured
:class:`~repro.obs.Observability`) to record a structured event trace;
``Database.metrics()`` snapshots the metrics registry all components
publish into.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple, Union

from repro.core.protocol import LockProtocol
from repro.core.registry import get_protocol
from repro.dom.builder import Spec, build_children
from repro.dom.document import Document
from repro.dom.node_manager import NodeManager
from repro.errors import LockError
from repro.locking.lock_manager import IsolationLevel, LockManager
from repro.obs import Observability
from repro.sched.costs import DEFAULT_COSTS, CostModel
from repro.sched.simulator import run_sync
from repro.session import Session
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction


class Database:
    """An XTC-style single-document XML database."""

    def __init__(
        self,
        protocol: Union[str, LockProtocol] = "taDOM3+",
        *,
        lock_depth: int = 4,
        isolation: Union[IsolationLevel, str] = IsolationLevel.REPEATABLE,
        document: Optional[Document] = None,
        root_element: str = "root",
        buffer_pool_pages: int = 4096,
        costs: CostModel = DEFAULT_COSTS,
        wait_timeout_ms: Optional[float] = 10_000.0,
        enable_wal: bool = False,
        observability: Union[Observability, bool, None] = None,
        escalation_threshold: Optional[int] = None,
    ):
        if isinstance(protocol, str):
            protocol = get_protocol(protocol)
        self.protocol = protocol
        self.lock_depth = lock_depth
        self.default_isolation = IsolationLevel.parse(isolation)
        if observability is None or observability is False:
            self.obs = Observability.disabled()
        elif observability is True:
            self.obs = Observability.enabled()
        else:
            self.obs = observability
        if document is None:
            from repro.storage.buffer import make_buffered_store

            document = Document(
                root_element=root_element,
                buffer=make_buffered_store(pool_size=buffer_pool_pages),
            )
        self.document = document
        self.document.buffer.bind_observability(self.obs)
        self.locks = LockManager(
            protocol,
            lock_depth=lock_depth,
            wait_timeout_ms=wait_timeout_ms,
            active_transactions=lambda: self.transactions.active_count,
            obs=self.obs,
            escalation_threshold=escalation_threshold,
        )
        self.wal = None
        if enable_wal:
            from repro.txn.wal import WriteAheadLog

            self.wal = WriteAheadLog()
            self.obs.metrics.register_collector(self.wal.collect_metrics)
        self.transactions = TransactionManager(document, self.locks,
                                               wal=self.wal, obs=self.obs)
        self.nodes = NodeManager(document, self.locks, costs, wal=self.wal)

    # -- content loading -------------------------------------------------------

    def load(self, spec: Spec) -> None:
        """Bulk-load children below the document root (no locking)."""
        build_children(self.document, self.document.root, [spec])

    # -- transaction lifecycle ----------------------------------------------------

    def session(
        self,
        name: str = "session",
        isolation: Optional[Union[IsolationLevel, str]] = None,
    ) -> Session:
        """Open a transaction as a context manager.

        Commits on clean ``with`` exit, rolls back (and re-raises) on an
        exception.  See :class:`repro.session.Session`.
        """
        return Session(self, name, isolation)

    def begin(
        self,
        name: str = "txn",
        isolation: Optional[Union[IsolationLevel, str]] = None,
    ) -> Transaction:
        level = self.default_isolation if isolation is None else isolation
        level = IsolationLevel.parse(level)
        if level is IsolationLevel.SERIALIZABLE and not (
            self.protocol.supports_serializable
        ):
            # Footnote 1 of the paper: only the taDOM* group offers it.
            raise LockError(
                f"isolation level serializable is only offered by the "
                f"taDOM* group, not by {self.protocol.name}"
            )
        return self.transactions.begin(name, level)

    def commit(self, txn: Transaction) -> None:
        self.transactions.commit(txn)

    def abort(self, txn: Transaction, *, reason: str = "rollback") -> None:
        self.transactions.abort(txn, reason=reason)

    # -- single-user driving ---------------------------------------------------------

    def run(self, operation: Generator) -> Tuple[Any, float]:
        """Drive one node-manager operation to completion (single-user).

        Returns ``(result, simulated_ms)``.
        """
        return run_sync(operation)

    def set_clock(self, clock) -> None:
        """Bind all clocks (transactions, lock waits, trace timestamps)
        to e.g. a simulator."""
        self.transactions._clock = clock
        self.locks.clock = clock
        self.obs.bind_clock(clock)

    # -- persistence -------------------------------------------------------------------

    def save(self, path) -> int:
        """Write the document (a physical checkpoint image) to ``path``.

        Returns the number of bytes written.  Exact SPLIDs, the
        vocabulary, and all indexes survive the round trip.
        """
        from repro.txn.wal import checkpoint_to_bytes, take_checkpoint

        data = checkpoint_to_bytes(take_checkpoint(self.document, self.wal))
        with open(path, "wb") as handle:
            handle.write(data)
        return len(data)

    @classmethod
    def load_file(cls, path, **kwargs) -> "Database":
        """Open a database image written by :meth:`save`.

        Keyword arguments (protocol, lock depth, ...) configure the new
        instance around the restored document.
        """
        from repro.txn.wal import checkpoint_from_bytes, restore_checkpoint

        with open(path, "rb") as handle:
            checkpoint = checkpoint_from_bytes(handle.read())
        return cls(document=restore_checkpoint(checkpoint), **kwargs)

    # -- statistics ---------------------------------------------------------------------

    def statistics(self) -> dict:
        stats = dict(self.locks.lock_statistics())
        stats.update(self.document.statistics())
        stats["committed"] = self.transactions.committed
        stats["aborted"] = self.transactions.aborted
        return stats

    def metrics(self) -> dict:
        """Snapshot of the metrics registry (all components collected)."""
        return self.obs.metrics.as_dict()

    @property
    def tracer(self):
        """The database's event tracer (the no-op tracer when disabled)."""
        return self.obs.tracer
