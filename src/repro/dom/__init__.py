"""taDOM document layer: storage model, builder, parser, serializer.

The lock-guarded DOM API (:class:`~repro.dom.node_manager.NodeManager`)
is exported lazily because it depends on the locking and transaction
packages.
"""

from repro.dom.builder import build_children, build_document
from repro.dom.document import ID_ATTRIBUTE, Document
from repro.dom.parser import parse_document, parse_spec
from repro.dom.serializer import serialize_document, serialize_subtree

__all__ = [
    "Document",
    "ID_ATTRIBUTE",
    "build_children",
    "build_document",
    "parse_document",
    "parse_spec",
    "serialize_document",
    "serialize_subtree",
]
