"""The taDOM document: storage model of Section 3.1.

A :class:`Document` bundles the physical pieces of one stored XML
document -- document store (B*-tree), vocabulary, element index, ID index,
and SPLID allocator -- and offers *raw* structural operations.  "Raw" means
unsynchronized: no locks, no transaction bookkeeping.  The lock-guarded API
lives in :class:`repro.dom.node_manager.NodeManager`, which routes every
operation through the meta-synchronization layer before delegating here.

Per the taDOM model, attributes and text are virtually expanded: an
element's attributes hang below a separate *attribute root* (division 1),
and the character data of text and attribute nodes lives in *string nodes*
(again division 1).  This lets the lock manager isolate structure from
content, which some protocols exploit and others (the paper's MGL* group
on TArenameTopic) cannot.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import DocumentError, NodeNotFound
from repro.splid import Splid, SplidAllocator
from repro.storage.buffer import BufferManager, make_buffered_store
from repro.storage.document_store import DocumentStore
from repro.storage.element_index import ElementIndex, IdIndex
from repro.storage.record import NodeKind, NodeRecord
from repro.storage.vocabulary import Vocabulary

#: The attribute name whose values feed the ID index (getElementById).
ID_ATTRIBUTE = "id"


class Document:
    """One stored XML document with its indexes (raw physical API)."""

    def __init__(
        self,
        name: str = "document",
        root_element: str = "root",
        *,
        buffer: Optional[BufferManager] = None,
        dist: int = 2,
    ):
        self.name = name
        self.buffer = buffer if buffer is not None else make_buffered_store(
            pool_size=4096
        )
        self.vocabulary = Vocabulary()
        self.store = DocumentStore(self.buffer)
        self.element_index = ElementIndex(self.buffer, self.vocabulary)
        self.id_index = IdIndex(self.buffer)
        self.allocator = SplidAllocator(dist=dist)
        self.root = Splid.root()
        self.store.put(self.root, NodeRecord.element(self.vocabulary.intern(root_element)))
        self.element_index.add(root_element, self.root)

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.store)

    def node(self, splid: Splid) -> NodeRecord:
        return self.store.get(splid)

    def exists(self, splid: Splid) -> bool:
        return self.store.exists(splid)

    def kind(self, splid: Splid) -> NodeKind:
        return self.store.get(splid).kind

    def name_of(self, splid: Splid) -> str:
        """Tag/attribute name of an element or attribute node."""
        record = self.store.get(splid)
        if record.kind not in (NodeKind.ELEMENT, NodeKind.ATTRIBUTE):
            raise DocumentError(f"{splid} ({record.kind.name}) has no name")
        return self.vocabulary.name_of(record.name_surrogate)

    def string_value(self, splid: Splid) -> str:
        """Content of a text or attribute node (via its string node)."""
        string_label = self.store.string_child(splid)
        if string_label is None:
            raise DocumentError(f"{splid} has no string node")
        return self.store.get(string_label).text_content or ""

    def text_of_element(self, element: Splid) -> str:
        """Concatenated content of the element's direct text children."""
        parts: List[str] = []
        for child in self.store.children(element):
            if self.store.get(child).kind is NodeKind.TEXT:
                parts.append(self.string_value(child))
        return "".join(parts)

    def attribute_value(self, element: Splid, name: str) -> Optional[str]:
        for attr in self.store.attributes(element):
            if self.name_of(attr) == name:
                return self.string_value(attr)
        return None

    def attributes_of(self, element: Splid) -> Dict[str, str]:
        return {
            self.name_of(attr): self.string_value(attr)
            for attr in self.store.attributes(element)
        }

    def element_by_id(self, id_value: str) -> Optional[Splid]:
        return self.id_index.lookup(id_value)

    def elements_by_name(self, name: str) -> List[Splid]:
        return self.element_index.lookup_list(name)

    # -- structural updates ------------------------------------------------------

    def add_element(
        self,
        parent: Splid,
        name: str,
        *,
        before: Optional[Splid] = None,
        after: Optional[Splid] = None,
    ) -> Splid:
        """Insert a new element child of ``parent``.

        Default position is after the current last child; ``before`` /
        ``after`` select a specific gap (pass an existing sibling).
        """
        self._require_kind(parent, NodeKind.ELEMENT)
        splid = self._allocate_child(parent, before=before, after=after)
        self.store.put(splid, NodeRecord.element(self.vocabulary.intern(name)))
        self.element_index.add(name, splid)
        return splid

    def add_text(
        self,
        parent: Splid,
        content: str,
        *,
        before: Optional[Splid] = None,
        after: Optional[Splid] = None,
    ) -> Splid:
        """Insert a text node (plus its string node) below ``parent``."""
        self._require_kind(parent, NodeKind.ELEMENT)
        splid = self._allocate_child(parent, before=before, after=after)
        self.store.put(splid, NodeRecord.text())
        self.store.put(splid.string_node, NodeRecord.string(content))
        return splid

    def set_attribute(self, element: Splid, name: str, value: str) -> Splid:
        """Create or update an attribute; returns the attribute node."""
        self._require_kind(element, NodeKind.ELEMENT)
        for attr in self.store.attributes(element):
            if self.name_of(attr) == name:
                self.update_string(attr, value)
                return attr
        attr_root = element.attribute_root
        if not self.store.exists(attr_root):
            self.store.put(attr_root, NodeRecord.attribute_root())
        last = None
        for attr in self.store.attributes(element):
            last = attr
        splid = self.allocator.between(attr_root, last, None)
        self.store.put(splid, NodeRecord.attribute(self.vocabulary.intern(name)))
        self.store.put(splid.string_node, NodeRecord.string(value))
        if name == ID_ATTRIBUTE:
            self.id_index.add(value, element)
        return splid

    def update_string(self, owner: Splid, content: str) -> str:
        """Replace the content of a text/attribute node; returns the old value."""
        string_label = self.store.string_child(owner)
        if string_label is None:
            raise DocumentError(f"{owner} has no string node to update")
        old = self.store.get(string_label).text_content or ""
        self.store.put(string_label, NodeRecord.string(content))
        owner_record = self.store.get(owner)
        if owner_record.kind is NodeKind.ATTRIBUTE:
            if self.vocabulary.name_of(owner_record.name_surrogate) == ID_ATTRIBUTE:
                element = owner.parent.parent  # attr -> attr root -> element
                self.id_index.remove(old)
                self.id_index.add(content, element)
        return old

    def rename_element(self, element: Splid, new_name: str) -> str:
        """DOM3 ``renameNode``; returns the old name."""
        record = self.store.get(element)
        if record.kind is not NodeKind.ELEMENT:
            raise DocumentError(f"only elements can be renamed, not {record.kind.name}")
        old_name = self.vocabulary.name_of(record.name_surrogate)
        self.element_index.remove(old_name, element)
        self.store.put(element, record.renamed(self.vocabulary.intern(new_name)))
        self.element_index.add(new_name, element)
        return old_name

    def delete_subtree(self, root: Splid) -> List[Tuple[Splid, NodeRecord]]:
        """Delete ``root`` and its subtree; returns the removed entries.

        The returned list (document order) is exactly what the undo log
        needs to reinsert the subtree on rollback.
        """
        if root == self.root:
            raise DocumentError("cannot delete the document root")
        removed = list(self.store.subtree(root))
        if not removed:
            raise NodeNotFound(f"no node {root}")
        self._unindex(removed)
        for splid, _record in removed:
            self.store.delete(splid)
        return removed

    def restore_subtree(self, entries: List[Tuple[Splid, NodeRecord]]) -> None:
        """Reinsert entries removed by :meth:`delete_subtree` (undo)."""
        for splid, record in entries:
            self.store.put(splid, record)
        self._reindex(entries)

    def relabel_subtree(self, root: Splid) -> Dict[Splid, Splid]:
        """Compact the SPLIDs inside a subtree (Section 3.2 maintenance).

        "Implementation restrictions (e.g., key length < 128B in B-trees)
        may enforce subtree relabeling ... relabeling only concerns the
        subtree."  The subtree root keeps its label; every descendant gets
        a fresh gap-spaced label, preserving document order and the taDOM
        meta structure.  Returns the old -> new label mapping (the lock
        manager / applications must invalidate cached labels through it).
        """
        old_entries = list(self.store.subtree(root))
        records = dict(old_entries)
        children_of: Dict[Splid, List[Splid]] = {}
        for splid, _record in old_entries:
            if splid == root:
                continue
            children_of.setdefault(splid.parent, []).append(splid)

        mapping: Dict[Splid, Splid] = {root: root}

        def assign(old_parent: Splid) -> None:
            new_parent = mapping[old_parent]
            ordinary = []
            for child in sorted(children_of.get(old_parent, ())):
                if child.divisions[-1] == 1:
                    mapping[child] = new_parent.with_suffix((1,))
                else:
                    ordinary.append(child)
            fresh = self.allocator.initial_children(new_parent, len(ordinary))
            for child, new_label in zip(ordinary, fresh):
                mapping[child] = new_label
            for child in children_of.get(old_parent, ()):
                assign(child)

        assign(root)
        self._unindex(old_entries)
        for splid, _record in old_entries:
            self.store.delete(splid)
        new_entries = [
            (mapping[splid], record) for splid, record in old_entries
        ]
        for splid, record in new_entries:
            self.store.put(splid, record)
        self._reindex(new_entries)
        return mapping

    # -- statistics ----------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        """Storage figures referenced by the paper (occupancy etc.)."""
        return {
            "nodes": float(len(self.store)),
            "document_leaf_pages": float(self.store.tree.leaf_count()),
            "document_occupancy": self.store.tree.leaf_occupancy(),
            "tree_height": float(self.store.tree.height()),
            "vocabulary_names": float(len(self.vocabulary)),
            "indexed_ids": float(len(self.id_index)),
        }

    # -- internals --------------------------------------------------------------------

    def _allocate_child(
        self,
        parent: Splid,
        *,
        before: Optional[Splid],
        after: Optional[Splid],
    ) -> Splid:
        if before is not None and after is not None:
            raise DocumentError("pass at most one of before/after")
        if before is not None:
            left = self.store.previous_sibling(before)
            return self.allocator.between(parent, left, before)
        if after is not None:
            right = self.store.next_sibling(after)
            return self.allocator.between(parent, after, right)
        last = self.store.last_child(parent)
        return self.allocator.between(parent, last, None)

    def _require_kind(self, splid: Splid, kind: NodeKind) -> None:
        record = self.store.get(splid)
        if record.kind is not kind:
            raise DocumentError(
                f"{splid} is a {record.kind.name}, expected {kind.name}"
            )

    def _unindex(self, entries: List[Tuple[Splid, NodeRecord]]) -> None:
        labels = {splid for splid, _record in entries}
        for splid, record in entries:
            if record.kind is NodeKind.ELEMENT:
                self.element_index.remove(
                    self.vocabulary.name_of(record.name_surrogate), splid
                )
            elif record.kind is NodeKind.ATTRIBUTE:
                name = self.vocabulary.name_of(record.name_surrogate)
                if name == ID_ATTRIBUTE and splid.string_node in labels:
                    value_record = next(
                        rec for s, rec in entries if s == splid.string_node
                    )
                    self.id_index.remove(value_record.text_content or "")

    def _reindex(self, entries: List[Tuple[Splid, NodeRecord]]) -> None:
        records = dict(entries)
        for splid, record in entries:
            if record.kind is NodeKind.ELEMENT:
                self.element_index.add(
                    self.vocabulary.name_of(record.name_surrogate), splid
                )
            elif record.kind is NodeKind.ATTRIBUTE:
                name = self.vocabulary.name_of(record.name_surrogate)
                if name == ID_ATTRIBUTE and splid.string_node in records:
                    value = records[splid.string_node].text_content or ""
                    element = splid.parent.parent
                    self.id_index.add(value, element)

    # -- iteration convenience ----------------------------------------------------------

    def walk(self) -> Iterator[Tuple[Splid, NodeRecord]]:
        return self.store.scan()
