"""Programmatic document construction from nested Python specs.

TaMix's bib generator and most tests build documents directly rather than
parsing XML text.  A *spec* is::

    ("tag", {"attr": "value"}, [child_spec, ...])      # element
    ("tag", {"attr": "value"})                         # leaf element
    "character data"                                   # text node

The attribute dict and child list are each optional.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple, Union

from repro.errors import DocumentError
from repro.splid import Splid
from repro.dom.document import Document

Spec = Union[str, Tuple]


def _parse_spec(spec: Spec) -> Tuple[str, Mapping[str, str], Sequence[Spec]]:
    if not isinstance(spec, tuple) or not spec or not isinstance(spec[0], str):
        raise DocumentError(f"malformed element spec: {spec!r}")
    name = spec[0]
    attrs: Mapping[str, str] = {}
    children: Sequence[Spec] = ()
    for part in spec[1:]:
        if isinstance(part, Mapping):
            attrs = part
        elif isinstance(part, (list, tuple)):
            children = part
        else:
            raise DocumentError(f"unexpected spec part {part!r} in {name!r}")
    return name, attrs, children


def build_children(document: Document, parent: Splid, specs: Iterable[Spec]) -> None:
    """Append children described by ``specs`` below ``parent``."""
    for spec in specs:
        if isinstance(spec, str):
            document.add_text(parent, spec)
            continue
        name, attrs, children = _parse_spec(spec)
        element = document.add_element(parent, name)
        for attr_name, attr_value in attrs.items():
            document.set_attribute(element, attr_name, attr_value)
        build_children(document, element, children)


def build_document(spec: Spec, *, name: str = "document", **document_kwargs) -> Document:
    """Create a :class:`Document` whose root matches ``spec``."""
    if isinstance(spec, str):
        raise DocumentError("the document root must be an element spec")
    root_name, attrs, children = _parse_spec(spec)
    document = Document(name=name, root_element=root_name, **document_kwargs)
    for attr_name, attr_value in attrs.items():
        document.set_attribute(document.root, attr_name, attr_value)
    build_children(document, document.root, children)
    return document
