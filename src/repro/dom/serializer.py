"""Serialization of stored documents back to XML text."""

from __future__ import annotations

from typing import List, Optional

from repro.splid import Splid
from repro.dom.document import Document
from repro.storage.record import NodeKind


def _escape(text: str, *, attribute: bool = False) -> str:
    text = text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    if attribute:
        text = text.replace('"', "&quot;")
    return text


def serialize_subtree(
    document: Document,
    root: Optional[Splid] = None,
    *,
    indent: Optional[int] = None,
) -> str:
    """XML text of the subtree rooted at ``root`` (default: whole document).

    ``indent`` pretty-prints with the given indentation width; ``None``
    emits compact output.
    """
    root = root if root is not None else document.root
    pieces: List[str] = []
    _emit(document, root, pieces, indent, 0)
    return "".join(pieces)


def serialize_document(document: Document, *, indent: Optional[int] = None) -> str:
    header = '<?xml version="1.0"?>'
    body = serialize_subtree(document, indent=indent)
    joiner = "\n" if indent is not None else ""
    return header + joiner + body


def _emit(
    document: Document,
    splid: Splid,
    pieces: List[str],
    indent: Optional[int],
    depth: int,
) -> None:
    record = document.node(splid)
    pad = "" if indent is None else " " * (indent * depth)
    newline = "" if indent is None else "\n"
    if record.kind is NodeKind.TEXT:
        pieces.append(pad + _escape(document.string_value(splid)) + newline)
        return
    if record.kind is not NodeKind.ELEMENT:
        return
    name = document.name_of(splid)
    attrs = "".join(
        f' {attr_name}="{_escape(attr_value, attribute=True)}"'
        for attr_name, attr_value in document.attributes_of(splid).items()
    )
    children = list(document.store.children(splid))
    if not children:
        pieces.append(f"{pad}<{name}{attrs}/>{newline}")
        return
    pieces.append(f"{pad}<{name}{attrs}>{newline}")
    for child in children:
        _emit(document, child, pieces, indent, depth + 1)
    pieces.append(f"{pad}</{name}>{newline}")
