"""The node manager: the lock-guarded DOM API of the XDBMS.

Every operation is a *generator* that yields simulation effects
(:class:`~repro.sched.simulator.Delay` for simulated work,
:class:`~repro.locking.lock_table.WaitTicket` for lock waits), so the same
code runs under the discrete-event simulator, the threaded runtime, and
the single-user driver (:func:`repro.sched.simulator.run_sync`).

Responsibilities, mirroring XTC's node manager (Section 3):

* translate DOM operations into meta-lock requests and hand them to the
  lock manager (meta-synchronization);
* execute conversion fan-outs (CX_NR-style child locking) by enumerating
  the children -- a real document access;
* honour protocol capabilities: protocols without intention locks reach
  targets by navigating from the root; protocols without subtree locks
  visit subtrees node by node and must IDX-scan before subtree deletes;
* charge the cost model for lock-manager work, buffer traffic, and CPU;
* maintain the undo log for rollbacks.
"""

from __future__ import annotations

import functools
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.core.protocol import (
    Access,
    EdgeRole,
    ID_KEY_SPACE,
    ID_SPACE,
    LockStep,
    MetaOp,
    MetaRequest,
)
from repro.locking.lock_manager import IsolationLevel
from repro.dom.builder import Spec, build_children
from repro.dom.document import ID_ATTRIBUTE, Document
from repro.locking.lock_manager import AcquireReport, LockManager
from repro.obs import OP_ACCESS, SPAN_BEGIN, SPAN_END, txn_label
from repro.sched.costs import DEFAULT_COSTS, CostModel
from repro.sched.simulator import Delay
from repro.splid import Splid
from repro.storage.buffer import IoStatistics
from repro.storage.record import NodeKind
from repro.txn.transaction import Transaction

T = TypeVar("T")


def _traced(fn):
    """Wrap a node-manager operation generator in an ``op`` span.

    With tracing disabled the wrapper costs one attribute check and
    returns the undecorated generator.  With tracing enabled the span's
    end event attributes the operation's buffer traffic (logical and
    physical reads seen by this transaction during the span) and its
    simulated I/O cost, which the analyzer turns into the per-transaction
    critical-path breakdown.
    """

    @functools.wraps(fn)
    def wrapper(self, txn, *args, **kwargs):
        if not self.tracer.enabled:
            return fn(self, txn, *args, **kwargs)
        return self._op_span(fn.__name__, txn, fn(self, txn, *args, **kwargs))

    return wrapper


class NodeManager:
    """Lock-guarded DOM operations over one document."""

    def __init__(
        self,
        document: Document,
        locks: LockManager,
        costs: CostModel = DEFAULT_COSTS,
        *,
        wal=None,
    ):
        self.document = document
        self.locks = locks
        self.costs = costs
        #: Optional write-ahead log (see :mod:`repro.txn.wal`).
        self.wal = wal
        #: The lock manager's tracer doubles as the span sink, so one
        #: ``Observability`` bundle captures both layers in order.
        self.tracer = locks.tracer
        #: Trace one ``op.access`` event per meta request (history-oracle
        #: input, see :mod:`repro.verify`); off unless the bundle opts in.
        self._access_events = locks.obs.access_events and self.tracer.enabled
        if not self.tracer.enabled:
            # Static dispatch: with tracing off, bind the undecorated
            # operation generators directly on the instance so every call
            # skips the ``_traced`` wrapper frame and its guard entirely.
            # Enabledness is latched at construction (tracers are wired
            # before the node manager exists); subclass overrides of an
            # operation are left untouched.
            cls = type(self)
            for name, wrapper, plain in _TRACED_OPS:
                if getattr(cls, name, None) is wrapper:
                    setattr(self, name, plain.__get__(self))

    # ------------------------------------------------------------------
    # direct jumps
    # ------------------------------------------------------------------

    @_traced
    def get_element_by_id(self, txn: Transaction, id_value: str):
        """``getElementById``: a direct jump via the ID index.

        For protocols without intention locks the jump degenerates into a
        root-to-target navigation that locks the path step by step
        (plus the IDR jump lock on the target itself).
        """
        txn.require_active()
        txn.stats.operations += 1
        yield from self._id_key_locks(txn, [id_value], exclusive=False)
        if self.locks.table.has_space(ID_SPACE):
            # *-2PL jump protection: the IDR lock is keyed by the ID value
            # and acquired *before* the index lookup, so a jump towards a
            # subtree an uncommitted deleter has IDX-scanned blocks even
            # though the index entry is already gone.
            report = yield from self.locks.acquire_steps(
                txn, [LockStep(ID_SPACE, id_value, "IDR")]
            )
            yield from self._settle(txn, report)
        target, io = self._io(txn, lambda: self.document.element_by_id(id_value))
        if io:
            yield Delay(io)
        if target is None:
            # Serializable keeps the S key lock on the *absent* id, so a
            # later insert of this id (a phantom) has to wait.
            yield from self._end_op(txn)
            return None
        yield from self._reach(txn, target, id_value=id_value, exclusive=False)
        yield from self._end_op(txn)
        return target

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------

    @_traced
    def get_first_child(self, txn: Transaction, node: Splid):
        return (yield from self._navigate(
            txn, node, EdgeRole.FIRST_CHILD,
            lambda: self.document.store.first_child(node),
        ))

    @_traced
    def get_last_child(self, txn: Transaction, node: Splid):
        return (yield from self._navigate(
            txn, node, EdgeRole.LAST_CHILD,
            lambda: self.document.store.last_child(node),
        ))

    @_traced
    def get_next_sibling(self, txn: Transaction, node: Splid):
        return (yield from self._navigate(
            txn, node, EdgeRole.NEXT_SIBLING,
            lambda: self.document.store.next_sibling(node),
        ))

    @_traced
    def get_previous_sibling(self, txn: Transaction, node: Splid):
        return (yield from self._navigate(
            txn, node, EdgeRole.PREV_SIBLING,
            lambda: self.document.store.previous_sibling(node),
        ))

    @_traced
    def get_parent(self, txn: Transaction, node: Splid):
        txn.require_active()
        txn.stats.operations += 1
        parent = node.parent
        if parent is not None:
            yield from self._meta(
                txn, MetaRequest(MetaOp.READ_NODE, parent, Access.NAVIGATION)
            )
            txn.stats.nodes_visited += 1
            yield Delay(self.costs.node_cpu_ms)
        yield from self._end_op(txn)
        return parent

    @_traced
    def get_child_nodes(self, txn: Transaction, node: Splid):
        """``getChildNodes``: one level lock (taDOM) or per-child locks."""
        txn.require_active()
        txn.stats.operations += 1
        children, io = self._io(
            txn, lambda: tuple(self.document.store.children(node))
        )
        yield from self._meta(
            txn,
            MetaRequest(MetaOp.READ_LEVEL, node, Access.NAVIGATION,
                        children=children),
        )
        txn.stats.nodes_visited += len(children)
        yield Delay(io + len(children) * self.costs.node_cpu_ms)
        yield from self._end_op(txn)
        return children

    @_traced
    def get_attributes(self, txn: Transaction, element: Splid):
        """``getAttributes``: level lock on the attribute root."""
        txn.require_active()
        txn.stats.operations += 1
        attrs, io = self._io(
            txn, lambda: tuple(self.document.store.attributes(element))
        )
        attr_root = element.attribute_root
        if attrs:
            yield from self._meta(
                txn,
                MetaRequest(MetaOp.READ_LEVEL, attr_root, Access.NAVIGATION,
                            children=attrs),
            )
        else:
            yield from self._meta(
                txn, MetaRequest(MetaOp.READ_NODE, element, Access.NAVIGATION)
            )
        yield Delay(io + len(attrs) * self.costs.node_cpu_ms)
        yield from self._end_op(txn)
        return attrs

    # ------------------------------------------------------------------
    # reading values
    # ------------------------------------------------------------------

    @_traced
    def read_content(self, txn: Transaction, owner: Splid):
        """Value of a text or attribute node."""
        txn.require_active()
        txn.stats.operations += 1
        yield from self._meta(
            txn, MetaRequest(MetaOp.READ_CONTENT, owner, Access.NAVIGATION)
        )
        value, io = self._io(txn, lambda: self.document.string_value(owner))
        yield Delay(io + self.costs.node_cpu_ms)
        yield from self._end_op(txn)
        return value

    @_traced
    def get_attribute_value(self, txn: Transaction, element: Splid, name: str):
        """Read one attribute by name (locks the attribute level)."""
        attrs = yield from self.get_attributes(txn, element)
        for attr in attrs:
            attr_name, io = self._io(txn, lambda a=attr: self.document.name_of(a))
            if io:
                yield Delay(io)
            if attr_name == name:
                return (yield from self.read_content(txn, attr))
        return None

    @_traced
    def read_subtree(self, txn: Transaction, root: Splid):
        """Read a whole fragment (the paper's ``getFragment`` access).

        Subtree-capable protocols take one subtree lock and scan;
        the *-2PL group visits and locks node by node.
        """
        txn.require_active()
        txn.stats.operations += 1
        report = yield from self._meta(
            txn, MetaRequest(MetaOp.READ_SUBTREE, root, Access.NAVIGATION)
        )
        entries, io = self._io(txn, lambda: list(self.document.store.subtree(root)))
        if report.traverse_individually:
            # Depth-first visit, locking the edge taken into each node
            # (first-child from the parent, else next-sibling from the
            # previously seen sibling) plus the node itself.
            last_child_of = {}
            for splid, record in entries:
                if splid == root or splid.is_meta:
                    continue
                parent = splid.parent
                previous = last_child_of.get(parent)
                role = (EdgeRole.FIRST_CHILD if previous is None
                        else EdgeRole.NEXT_SIBLING)
                origin = parent if previous is None else previous
                last_child_of[parent] = splid
                yield from self._meta(
                    txn, MetaRequest(MetaOp.READ_EDGE, origin,
                                     Access.NAVIGATION, role=role)
                )
                yield from self._meta(
                    txn, MetaRequest(MetaOp.READ_NODE, splid, Access.NAVIGATION)
                )
                if record.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE):
                    yield from self._meta(
                        txn,
                        MetaRequest(MetaOp.READ_CONTENT, splid, Access.NAVIGATION),
                    )
        txn.stats.nodes_visited += len(entries)
        yield Delay(io + len(entries) * self.costs.node_cpu_ms)
        yield from self._end_op(txn)
        return entries

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    @_traced
    def update_content(self, txn: Transaction, owner: Splid, text: str):
        """Replace the value of a text/attribute node (IUD: update)."""
        txn.require_active()
        txn.stats.operations += 1
        yield from self._meta(
            txn, MetaRequest(MetaOp.WRITE_CONTENT, owner, Access.NAVIGATION)
        )
        if not self.document.exists(owner):
            # Vanished under a weak isolation level: nothing to update.
            yield from self._end_op(txn)
            return None
        old, io = self._io(txn, lambda: self.document.update_string(owner, text))
        txn.log_undo("content", (owner, old))
        if self.wal is not None:
            self.wal.log_content(txn.txn_id, owner, old, text)
        yield Delay(io + self.costs.update_cpu_ms)
        yield from self._end_op(txn)
        return old

    @_traced
    def rename_element(self, txn: Transaction, element: Splid, new_name: str):
        """DOM3 ``renameNode``."""
        txn.require_active()
        txn.stats.operations += 1
        yield from self._meta(
            txn, MetaRequest(MetaOp.RENAME_NODE, element, Access.NAVIGATION)
        )
        if not self.document.exists(element):
            yield from self._end_op(txn)
            return None
        old, io = self._io(txn, lambda: self.document.rename_element(element, new_name))
        txn.log_undo("rename", (element, old))
        if self.wal is not None:
            self.wal.log_rename(txn.txn_id, element, old, new_name)
        yield Delay(io + self.costs.update_cpu_ms)
        yield from self._end_op(txn)
        return old

    @_traced
    def insert_tree(self, txn: Transaction, parent: Splid, spec: Spec):
        """Insert a new element subtree as the last child of ``parent``.

        The new node's SPLID is predicted from the neighbours (the
        allocator is deterministic), locked, and re-validated -- if a
        concurrent insert won the gap the plan is recomputed.
        """
        txn.require_active()
        txn.stats.operations += 1
        if not self.document.exists(parent):
            yield from self._end_op(txn)
            return None
        while True:
            last, io = self._io(txn, lambda: self.document.store.last_child(parent))
            if io:
                yield Delay(io)
            predicted = self.document.allocator.between(parent, last, None)
            affected = tuple(n for n in (last, parent) if n is not None)
            yield from self._meta(
                txn,
                MetaRequest(MetaOp.INSERT_CHILD, predicted, Access.NAVIGATION,
                            affected=affected),
            )
            if last is not None:
                yield from self._meta(
                    txn,
                    MetaRequest(MetaOp.WRITE_EDGE, last, Access.NAVIGATION,
                                role=EdgeRole.NEXT_SIBLING),
                )
            else:
                # The new node becomes the first child as well.
                yield from self._meta(
                    txn,
                    MetaRequest(MetaOp.WRITE_EDGE, parent, Access.NAVIGATION,
                                role=EdgeRole.FIRST_CHILD),
                )
            yield from self._meta(
                txn,
                MetaRequest(MetaOp.WRITE_EDGE, parent, Access.NAVIGATION,
                            role=EdgeRole.LAST_CHILD),
            )
            current_last, io = self._io(
                txn, lambda: self.document.store.last_child(parent)
            )
            if io:
                yield Delay(io)
            if current_last == last:
                break
        if not self.document.exists(parent):
            yield from self._end_op(txn)
            return None
        yield from self._id_key_locks(
            txn, self._spec_ids(spec), exclusive=True
        )
        root_label, io = self._io(
            txn, lambda: self._build_tree(parent, spec)
        )
        txn.log_undo("insert", root_label)
        if self.wal is not None:
            self.wal.log_insert(
                txn.txn_id,
                list(self.document.store.subtree(root_label)),
                self.document,
            )
        yield Delay(io + self.costs.update_cpu_ms)
        yield from self._end_op(txn)
        return root_label

    @_traced
    def delete_subtree(
        self,
        txn: Transaction,
        root: Splid,
        access: Access = Access.NAVIGATION,
    ):
        """Delete a subtree (IUD: delete).

        For the *-2PL group this includes the expensive pre-delete scan:
        every element in the subtree owning an ID attribute is located via
        the node manager (document accesses, possibly hitting disk) and
        IDX-locked, so no other transaction can still jump inside.
        """
        txn.require_active()
        txn.stats.operations += 1
        left, io1 = self._io(txn, lambda: self.document.store.previous_sibling(root))
        right, io2 = self._io(txn, lambda: self.document.store.next_sibling(root))
        if io1 + io2:
            yield Delay(io1 + io2)
        affected = tuple(
            n for n in (left, right, root.parent) if n is not None
        )
        report = yield from self._meta(
            txn,
            MetaRequest(MetaOp.DELETE_SUBTREE, root, access, affected=affected),
        )
        if not self.document.exists(root):
            # Deleted concurrently under a weak isolation level.
            yield from self._end_op(txn)
            return 0
        if report.scan_ids is not None:
            yield from self._scan_and_idx_lock(txn, report.scan_ids)
        parent = root.parent
        if left is not None:
            yield from self._meta(
                txn, MetaRequest(MetaOp.WRITE_EDGE, left, Access.NAVIGATION,
                                 role=EdgeRole.NEXT_SIBLING),
            )
        elif parent is not None:
            # Removing the first child rewires the parent's first-child
            # edge; readers of an (even empty) child list must conflict.
            yield from self._meta(
                txn, MetaRequest(MetaOp.WRITE_EDGE, parent, Access.NAVIGATION,
                                 role=EdgeRole.FIRST_CHILD),
            )
        if right is not None:
            yield from self._meta(
                txn, MetaRequest(MetaOp.WRITE_EDGE, right, Access.NAVIGATION,
                                 role=EdgeRole.PREV_SIBLING),
            )
        elif parent is not None:
            yield from self._meta(
                txn, MetaRequest(MetaOp.WRITE_EDGE, parent, Access.NAVIGATION,
                                 role=EdgeRole.LAST_CHILD),
            )
        removed_ids, io0 = self._io(txn, lambda: self._subtree_ids(root))
        if io0:
            yield Delay(io0)
        yield from self._id_key_locks(txn, removed_ids, exclusive=True)
        entries, io = self._io(txn, lambda: self.document.delete_subtree(root))
        txn.log_undo("delete", entries)
        if self.wal is not None:
            self.wal.log_delete(txn.txn_id, entries, self.document)
        yield Delay(io + self.costs.update_cpu_ms * max(1, len(entries) // 8))
        yield from self._end_op(txn)
        return len(entries)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _navigate(
        self,
        txn: Transaction,
        origin: Splid,
        role: EdgeRole,
        resolve: Callable[[], Optional[Splid]],
    ):
        """One navigational step: edge lock + target node lock."""
        txn.require_active()
        txn.stats.operations += 1
        yield from self._meta(
            txn, MetaRequest(MetaOp.READ_EDGE, origin, Access.NAVIGATION, role=role)
        )
        target, io = self._io(txn, resolve)
        if target is not None:
            yield from self._meta(
                txn, MetaRequest(MetaOp.READ_NODE, target, Access.NAVIGATION)
            )
            txn.stats.nodes_visited += 1
        yield Delay(io + self.costs.node_cpu_ms)
        yield from self._end_op(txn)
        return target

    def _reach(self, txn: Transaction, target: Splid, *,
               exclusive: bool, id_value: Optional[str] = None):
        """Direct jump, or root navigation for jump-incapable protocols.

        Protocols without intention locks (the *-2PL group) cannot protect
        an ancestor path, so the node manager performs the physical
        navigation of Figure 1: from the document root, walking the child
        and sibling chains, leaving locks on every node and edge passed.
        """
        if self.locks.protocol.requires_root_navigation:
            path = target.ancestors_top_down() + (target,)
            yield from self._meta(
                txn, MetaRequest(MetaOp.READ_NODE, path[0], Access.NAVIGATION)
            )
            txn.stats.nodes_visited += 1
            for current, next_anchor in zip(path, path[1:]):
                siblings, io = self._io(
                    txn, lambda n=current: tuple(self.document.store.children(n))
                )
                if io:
                    yield Delay(io)
                previous: Optional[Splid] = None
                for sibling in siblings:
                    role = (EdgeRole.FIRST_CHILD if previous is None
                            else EdgeRole.NEXT_SIBLING)
                    origin = current if previous is None else previous
                    yield from self._meta(
                        txn,
                        MetaRequest(MetaOp.READ_EDGE, origin,
                                    Access.NAVIGATION, role=role),
                    )
                    yield from self._meta(
                        txn,
                        MetaRequest(MetaOp.READ_NODE, sibling, Access.NAVIGATION),
                    )
                    txn.stats.nodes_visited += 1
                    previous = sibling
                    if sibling == next_anchor:
                        break
                yield Delay(
                    max(1, len(siblings)) * self.costs.node_cpu_ms
                )
        yield from self._meta(
            txn,
            MetaRequest(MetaOp.READ_NODE, target, Access.JUMP,
                        id_value=id_value),
        )
        txn.stats.nodes_visited += 1
        yield Delay(self.costs.node_cpu_ms)

    def _meta(self, txn: Transaction, request: MetaRequest):
        """Issue one meta-lock request and settle its consequences."""
        report = yield from self.locks.acquire(txn, request)
        yield from self._settle(txn, report)
        if self._access_events:
            self._emit_access(txn, request)
        return report

    def _emit_access(self, txn: Transaction, request: MetaRequest) -> None:
        """Trace the settled meta request as one logical data access.

        Emitted *after* the request's locks were granted: conflicting
        accesses therefore appear in the trace in the order the lock
        protocol serialized them, which is what makes the recorded
        history checkable (see :mod:`repro.verify.oracle`).
        """
        data = {
            "op": request.op.value,
            "target": str(request.target),
            "access": request.access.value,
        }
        if request.role is not None:
            data["role"] = request.role.value
        if request.children:
            data["children"] = [str(child) for child in request.children]
        if request.affected:
            data["affected"] = [str(node) for node in request.affected]
        if request.id_value is not None:
            data["id_value"] = request.id_value
        self.tracer.emit(OP_ACCESS, txn=txn_label(txn), **data)

    def _settle(self, txn: Transaction, report: AcquireReport):
        txn.stats.lock_requests += report.lock_requests
        txn.stats.covered_skips += report.skipped_covered
        txn.stats.blocked_waits += report.blocked
        cost = self.costs.lock_cost(report.lock_requests, report.skipped_covered)
        if cost:
            yield Delay(cost)
        for node, child_mode in report.fanouts:
            children, io = self._io(
                txn, lambda n=node: list(self.document.store.children(n))
            )
            if io:
                yield Delay(io)
            sub = yield from self.locks.acquire_children(txn, children, child_mode)
            txn.stats.fanout_locks += sub.lock_requests
            yield from self._settle(txn, sub)

    def _scan_and_idx_lock(self, txn: Transaction, root: Splid):
        """The *-2PL pre-delete scan: IDX every ID value in the subtree.

        "Setting IDX locks on these nodes in the subtrees guarantees that
        other transactions do not reference anymore nodes in the subtree
        to be deleted."  Locks are keyed by ID *value*, matching the IDR
        locks that direct jumps acquire before resolving the index.
        """
        id_values, io = self._io(txn, lambda: self._subtree_ids(root))
        subtree_size, io2 = self._io(
            txn, lambda: self.document.store.subtree_size(root)
        )
        txn.stats.nodes_visited += subtree_size
        yield Delay(io + io2 + subtree_size * self.costs.node_cpu_ms)
        steps = [LockStep(ID_SPACE, value, "IDX") for value in id_values]
        report = yield from self.locks.acquire_steps(txn, steps)
        yield from self._settle(txn, report)

    def _build_tree(self, parent: Splid, spec: Spec) -> Splid:
        if isinstance(spec, str):
            return self.document.add_text(parent, spec)
        name = spec[0]
        attrs = {}
        children: Tuple = ()
        for part in spec[1:]:
            if isinstance(part, dict):
                attrs = part
            else:
                children = part
        element = self.document.add_element(parent, name)
        for attr_name, attr_value in attrs.items():
            self.document.set_attribute(element, attr_name, attr_value)
        build_children(self.document, element, children)
        return element

    def _id_key_locks(self, txn: Transaction, ids, *, exclusive: bool):
        """Key-range locks on ID values (serializable isolation only)."""
        if getattr(txn, "isolation", None) is not IsolationLevel.SERIALIZABLE:
            return
        ids = list(ids)
        if not ids:
            return
        mode = "X" if exclusive else "S"
        steps = [LockStep(ID_KEY_SPACE, value, mode) for value in ids]
        report = yield from self.locks.acquire_steps(txn, steps)
        yield from self._settle(txn, report)

    def _spec_ids(self, spec: Spec) -> List[str]:
        """All ``id`` attribute values a builder spec would create."""
        if isinstance(spec, str):
            return []
        ids: List[str] = []
        children: Tuple = ()
        for part in spec[1:]:
            if isinstance(part, dict):
                if ID_ATTRIBUTE in part:
                    ids.append(part[ID_ATTRIBUTE])
            else:
                children = part
        for child in children:
            ids.extend(self._spec_ids(child))
        return ids

    def _subtree_ids(self, root: Splid) -> List[str]:
        """All indexed ID values inside a subtree (before its deletion)."""
        ids: List[str] = []
        for splid, record in self.document.store.subtree(root):
            if record.kind is not NodeKind.ATTRIBUTE:
                continue
            name = self.document.vocabulary.name_of(record.name_surrogate)
            if name == ID_ATTRIBUTE:
                string_record = self.document.store.try_get(splid.string_node)
                if string_record is not None:
                    ids.append(string_record.text_content or "")
        return ids

    def _end_op(self, txn: Transaction):
        released = self.locks.end_operation(txn)
        if released:
            yield Delay(released * self.costs.lock_request_ms)

    def _io(self, txn: Transaction, fn: Callable[[], T]) -> Tuple[T, float]:
        """Run a document access, returning (result, simulated cost)."""
        before = self.document.buffer.stats.snapshot()
        result = fn()
        delta = self.document.buffer.stats.delta_since(before)
        txn.stats.logical_reads += delta.logical_reads
        txn.stats.physical_reads += delta.physical_reads
        return result, self.costs.io_cost(delta)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def _op_span(self, name: str, txn: Transaction, inner):
        """Delegate to an operation generator inside an ``op`` span."""
        label = txn_label(txn)
        stats = txn.stats
        logical0 = stats.logical_reads
        physical0 = stats.physical_reads
        self.tracer.emit(SPAN_BEGIN, txn=label, cat="op", name=name)
        try:
            result = yield from inner
        except GeneratorExit:
            # A parked generator collected at the run horizon: emitting
            # here would stamp garbage-collection time into the trace.
            raise
        except BaseException:
            self._emit_op_end(label, name, stats, logical0, physical0)
            raise
        self._emit_op_end(label, name, stats, logical0, physical0)
        return result

    def _emit_op_end(self, label, name, stats, logical0, physical0):
        logical = stats.logical_reads - logical0
        physical = stats.physical_reads - physical0
        io_ms = self.costs.io_cost(
            IoStatistics(logical_reads=logical, physical_reads=physical)
        )
        self.tracer.emit(
            SPAN_END, txn=label, cat="op", name=name,
            logical_reads=logical, physical_reads=physical,
            io_ms=round(io_ms, 6),
        )


#: ``(name, wrapper, undecorated)`` for every ``@_traced`` operation.
#: ``NodeManager.__init__`` binds the undecorated generator functions on
#: the instance when tracing is disabled (zero-cost-when-disabled).
_TRACED_OPS = tuple(
    (name, member, member.__wrapped__)
    for name, member in vars(NodeManager).items()
    if callable(member) and hasattr(member, "__wrapped__")
)
