"""SAX-style streaming access (one of the paper's XDP interfaces).

Section 1: "stream-oriented, navigational and declarative language models
are used to process XML documents ... XDBMSs should be able to run
concurrent transactions supporting all these interfaces simultaneously".
The navigational model subsumes streaming: a stream over a fragment is a
depth-first traversal whose isolation comes from an ordinary subtree read
lock, so stream readers coexist with navigational and declarative
transactions under whatever protocol is active.

:class:`StreamReader.events` yields SAX-ish events::

    ("start_element", name, {attr: value})
    ("characters", text)
    ("end_element", name)

Like the node-manager operations, ``events`` is an effect generator; the
events are collected through a callback handler or via
:func:`collect_events`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.dom.node_manager import NodeManager
from repro.splid import Splid
from repro.storage.record import NodeKind
from repro.txn.transaction import Transaction

Event = Tuple

#: Event names emitted by the stream reader.
START_ELEMENT = "start_element"
CHARACTERS = "characters"
END_ELEMENT = "end_element"


class StreamReader:
    """Streams a document fragment as SAX events under transaction locks."""

    def __init__(self, nodes: NodeManager):
        self.nodes = nodes
        self.document = nodes.document

    def events(
        self,
        txn: Transaction,
        root: Optional[Splid] = None,
        *,
        handler: Callable[[Event], None],
    ):
        """Generator: stream the subtree of ``root`` into ``handler``.

        The fragment is isolated with one subtree read (the same meta
        request ``getFragment`` uses), then decoded into events; under
        isolation level *repeatable* the stream is stable until commit.
        """
        root = root if root is not None else self.document.root
        entries = yield from self.nodes.read_subtree(txn, root)
        open_elements: List[Splid] = []

        def close_until(ancestor_of: Splid) -> None:
            while open_elements and not (
                open_elements[-1].is_ancestor_of(ancestor_of)
            ):
                closed = open_elements.pop()
                handler((END_ELEMENT, names[closed]))

        names = {}
        records = dict(entries)
        attributes = self._collect_attributes(records)
        for splid, record in entries:
            if record.kind is NodeKind.ELEMENT:
                close_until(splid)
                name = self.document.vocabulary.name_of(record.name_surrogate)
                names[splid] = name
                handler((START_ELEMENT, name, attributes.get(splid, {})))
                open_elements.append(splid)
            elif record.kind is NodeKind.TEXT:
                close_until(splid)
                string_record = records.get(splid.string_node)
                if string_record is not None:
                    handler((CHARACTERS, string_record.text_content or ""))
        while open_elements:
            handler((END_ELEMENT, names[open_elements.pop()]))
        return len(entries)

    def _collect_attributes(self, records) -> dict:
        """Map each element to its attribute dict (from the fragment)."""
        attributes: dict = {}
        for splid, record in records.items():
            if record.kind is not NodeKind.ATTRIBUTE:
                continue
            string_record = records.get(splid.string_node)
            value = "" if string_record is None else (
                string_record.text_content or ""
            )
            element = splid.parent.parent  # attribute -> root -> element
            name = self.document.vocabulary.name_of(record.name_surrogate)
            attributes.setdefault(element, {})[name] = value
        return attributes


def collect_events(database, txn: Transaction, root: Optional[Splid] = None):
    """Convenience: stream a fragment single-user, returning the events."""
    events: List[Event] = []
    reader = StreamReader(database.nodes)
    database.run(reader.events(txn, root, handler=events.append))
    return events
