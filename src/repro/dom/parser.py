"""A small, dependency-free XML parser feeding the document builder.

Supports the subset of XML that XDBMS benchmarks use: elements,
attributes, character data, comments, processing instructions (skipped),
CDATA sections, and the five predefined entities.  No DTDs, namespaces are
kept verbatim in names.
"""

from __future__ import annotations

import re
from typing import List, Tuple, Union

from repro.errors import DocumentError
from repro.dom.builder import Spec, build_document
from repro.dom.document import Document

_TOKEN = re.compile(
    r"<!--.*?-->"            # comment
    r"|<!\[CDATA\[.*?\]\]>"  # cdata
    r"|<\?.*?\?>"            # processing instruction / declaration
    r"|<!DOCTYPE[^>]*>"      # doctype (no internal subset)
    r"|</[^>]+>"             # end tag
    r"|<[^>]+>"              # start / empty tag
    r"|[^<]+",               # character data
    re.DOTALL,
)

_ATTR = re.compile(r"([^\s=]+)\s*=\s*(\"[^\"]*\"|'[^']*')")

_ENTITIES = {
    "&lt;": "<",
    "&gt;": ">",
    "&amp;": "&",
    "&apos;": "'",
    "&quot;": '"',
}


def _unescape(text: str) -> str:
    for entity, char in _ENTITIES.items():
        text = text.replace(entity, char)
    return text


def _parse_tag(token: str) -> Tuple[str, dict, bool]:
    body = token[1:-1].strip()
    self_closing = body.endswith("/")
    if self_closing:
        body = body[:-1].rstrip()
    name_match = re.match(r"[^\s/>]+", body)
    if name_match is None:
        raise DocumentError(f"malformed tag {token!r}")
    name = name_match.group(0)
    attrs = {
        key: _unescape(raw[1:-1])
        for key, raw in _ATTR.findall(body[len(name):])
    }
    return name, attrs, self_closing


def parse_spec(text: str) -> Spec:
    """Parse XML text into a builder spec (root element)."""
    stack: List[Tuple[str, dict, List[Union[str, tuple]]]] = []
    root: Union[None, tuple] = None
    for match in _TOKEN.finditer(text):
        token = match.group(0)
        if token.startswith("<!--") or token.startswith("<?") or token.startswith("<!DOCTYPE"):
            continue
        if token.startswith("<![CDATA["):
            if not stack:
                continue
            stack[-1][2].append(token[9:-3])
            continue
        if token.startswith("</"):
            name = token[2:-1].strip()
            if not stack or stack[-1][0] != name:
                raise DocumentError(f"unexpected end tag </{name}>")
            done_name, done_attrs, done_children = stack.pop()
            spec = (done_name, done_attrs, done_children)
            if stack:
                stack[-1][2].append(spec)
            else:
                if root is not None:
                    raise DocumentError("multiple document roots")
                root = spec
            continue
        if token.startswith("<"):
            name, attrs, self_closing = _parse_tag(token)
            if self_closing:
                spec = (name, attrs, [])
                if stack:
                    stack[-1][2].append(spec)
                elif root is None:
                    root = spec
                else:
                    raise DocumentError("multiple document roots")
            else:
                stack.append((name, attrs, []))
            continue
        data = _unescape(token)
        if data.strip() and stack:
            stack[-1][2].append(data)
    if stack:
        raise DocumentError(f"unclosed element <{stack[-1][0]}>")
    if root is None:
        raise DocumentError("no document root found")
    return root


def parse_document(text: str, *, name: str = "document", **kwargs) -> Document:
    """Parse XML text into a stored :class:`Document`."""
    return build_document(parse_spec(text), name=name, **kwargs)
