"""Command-line interface: run the paper's experiments from the shell.

::

    python -m repro info
    python -m repro cluster1 --protocol taDOM3+ --lock-depth 4
    python -m repro cluster2
    python -m repro sweep --figure 9 --depths 0 2 4 6
    python -m repro sweep --depths 2 4 --verify
    python -m repro trace --protocol taDOM2 --output trace.jsonl
    python -m repro verify traces/ --crash
    python -m repro metrics --protocol taDOM3+ --format json
    python -m repro query document.xml "//book[@year='1993']/title/text()"
    python -m repro stats document.xml
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.core import ALL_PROTOCOLS, GROUPS, group_of
from repro.dom import parse_document, serialize_subtree
from repro.query import evaluate_raw
from repro.splid import Splid
from repro.tamix import run_cluster1, run_cluster2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contest of XML Lock Protocols (VLDB 2006) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and protocol inventory")

    c1 = sub.add_parser("cluster1", help="one CLUSTER1 benchmark run")
    c1.add_argument("--protocol", default="taDOM3+", choices=ALL_PROTOCOLS)
    c1.add_argument("--lock-depth", type=int, default=4)
    c1.add_argument("--isolation", default="repeatable",
                    choices=["none", "uncommitted", "committed",
                             "repeatable", "serializable"])
    c1.add_argument("--scale", type=float, default=0.1)
    c1.add_argument("--seconds", type=float, default=60.0)
    c1.add_argument("--seed", type=int, default=42)

    c2 = sub.add_parser("cluster2", help="CLUSTER2 delete times, all protocols")
    c2.add_argument("--scale", type=float, default=0.1)
    c2.add_argument("--seed", type=int, default=7)

    sweep = sub.add_parser("sweep", help="lock-depth sweep (figure 9/10 style)")
    sweep.add_argument("--protocols", nargs="*", default=None,
                       help="default: all depth-aware protocols")
    sweep.add_argument("--depths", nargs="*", type=int,
                       default=[0, 1, 2, 3, 4, 5, 6, 7])
    sweep.add_argument("--isolation", default="repeatable")
    sweep.add_argument("--scale", type=float, default=0.1)
    sweep.add_argument("--seconds", type=float, default=60.0)
    sweep.add_argument("--runs", type=int, default=1,
                       help="repetitions per cell (averaged)")
    sweep.add_argument("--seed", type=int, default=42)
    sweep.add_argument("--shards", nargs="+", type=int, default=[1],
                       help="shard counts to sweep (1 = single node; "
                            ">1 partitions the document by SPLID range "
                            "and runs one replica stack per shard)")
    sweep.add_argument("--shard-transport", default="sim",
                       choices=["sim", "process"],
                       help="how sharded cells host their shards: the "
                            "deterministic simulated network or real "
                            "OS processes (results are identical)")
    sweep.add_argument("--fault-schedule", default=None,
                       help="fault schedule (built-in name or JSON path) "
                            "applied to sharded cells; uses the "
                            "net.request/net.reply/shard.crash sites")
    sweep.add_argument("--chaos-seed", type=int, default=0,
                       help="chaos engine base seed for faulted sharded "
                            "cells (default: 0)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes for the sweep cells "
                            "(1 = serial; results are identical)")
    sweep.add_argument("--csv", default=None,
                       help="also write the full result matrix as CSV")
    sweep.add_argument("--json", default=None,
                       help="also write the full result matrix as JSON")
    sweep.add_argument("--trace-dir", default=None,
                       help="capture a JSONL event trace per cell run "
                            "into this directory")
    sweep.add_argument("--progress", action="store_true",
                       help="print a live per-cell heartbeat to stderr")
    sweep.add_argument("--verify", action="store_true",
                       help="record op.access traces and run the "
                            "repro.verify history oracle on every cell "
                            "(uses a temp dir unless --trace-dir is set)")
    sweep.add_argument("--journal", default=None,
                       help="append every finished cell to this JSONL "
                            "journal (enables --resume)")
    sweep.add_argument("--resume", action="store_true",
                       help="aggregate cells already in --journal instead "
                            "of re-running them (byte-identical to an "
                            "uninterrupted run)")
    sweep.add_argument("--stop-after", type=int, default=None,
                       help="stop after N freshly executed cells (for "
                            "testing --resume round trips)")
    sweep.add_argument("--cell-timeout", type=float, default=None,
                       help="per-cell timeout in seconds for parallel "
                            "execution (timed-out cells re-run serially)")
    sweep.add_argument("--cell-retries", type=int, default=1,
                       help="extra serial attempts for a failing cell "
                            "(default: 1)")

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded workload under a fault schedule and verify "
             "invariants (serializability, bit-identical recovery, no "
             "lost commits)",
    )
    chaos.add_argument("--protocol", default="taDOM3+", choices=ALL_PROTOCOLS)
    chaos.add_argument("--lock-depth", type=int, default=4)
    chaos.add_argument("--isolation", default="repeatable",
                       choices=["none", "uncommitted", "committed",
                                "repeatable", "serializable"])
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--schedule", default="ci-small",
                       help="built-in schedule name or JSON schedule file "
                            "(default: ci-small)")
    chaos.add_argument("--scale", type=float, default=0.05)
    chaos.add_argument("--seconds", type=float, default=8.0)
    chaos.add_argument("--shards", type=int, default=1,
                       help="run the sharded chaos plane with this many "
                            "shards (default 1: single-node chaos; >1 "
                            "uses network/crash fault sites and the "
                            "per-shard WAL recovery oracle)")
    chaos.add_argument("--shard-transport", default="sim",
                       choices=["sim", "process"],
                       help="transport for sharded chaos runs "
                            "(default: sim)")
    chaos.add_argument("--chaos-seed", type=int, default=None,
                       help="fault-stream seed (default: --seed)")
    chaos.add_argument("--trace", default=None,
                       help="keep the run's JSONL event trace at this path")
    chaos.add_argument("--json", default=None,
                       help="write the chaos report as JSON to this file")
    chaos.add_argument("--check-determinism", action="store_true",
                       help="run twice and require identical fault points, "
                            "retry counts, and final verified state")

    trace = sub.add_parser(
        "trace",
        help="run one CLUSTER1 cell with event tracing; write a JSONL trace",
    )
    _add_cell_arguments(trace)
    trace.add_argument("--output", default="trace.jsonl",
                       help="JSONL trace file (default: trace.jsonl)")
    trace.add_argument("--verify", action="store_true",
                       help="replay the written trace and check its "
                            "aggregated counters against the run metrics")
    trace.add_argument("--access-events", action="store_true",
                       help="also record op.access/run.info events so "
                            "`repro verify` can check the trace")

    metrics = sub.add_parser(
        "metrics",
        help="run one CLUSTER1 cell and dump the metrics registry",
    )
    _add_cell_arguments(metrics)
    metrics.add_argument("--format", default="text",
                         choices=["text", "json", "csv"])
    metrics.add_argument("--output", default=None,
                         help="write to a file instead of stdout")

    modes = sub.add_parser(
        "modes", help="print a protocol's lock matrices (the paper's figures)"
    )
    modes.add_argument("protocol", choices=ALL_PROTOCOLS)
    modes.add_argument("--space", default=None,
                       help="lock space (default: all spaces)")

    xmark = sub.add_parser(
        "xmark", help="the unsuitable benchmark: read-only XMark-style mix"
    )
    xmark.add_argument("--scale", type=float, default=0.1)
    xmark.add_argument("--seconds", type=float, default=20.0)

    query = sub.add_parser("query", help="evaluate a path expression on an XML file")
    query.add_argument("file")
    query.add_argument("path")

    stats = sub.add_parser("stats", help="storage statistics for an XML file")
    stats.add_argument("file")

    report = sub.add_parser(
        "report",
        help="render a sweep.json into a Markdown/HTML report, or "
             "collate benchmarks/results/ into one evaluation report",
    )
    report.add_argument("sweep_json", nargs="?", default=None,
                        help="sweep result file written by "
                             "`repro sweep --json`; omit for the legacy "
                             "results-dir collation")
    report.add_argument("--format", default="md", choices=["md", "html"],
                        help="sweep report format (default: md)")
    report.add_argument("--title", default="TaMix sweep report")
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--output", default=None,
                        help="write to a file instead of stdout")

    verify = sub.add_parser(
        "verify",
        help="check recorded traces with the history oracle "
             "(serializability, lock conformance, two-phase) and/or run "
             "the WAL crash-point fault-injection suite",
    )
    verify.add_argument("target", nargs="?", default=None,
                        help="a JSONL trace (recorded with op.access "
                             "events) or a directory of traces; omit to "
                             "run only the crash suite")
    verify.add_argument("--protocol", default=None, choices=ALL_PROTOCOLS,
                        help="override the trace's run.info protocol")
    verify.add_argument("--lock-depth", type=int, default=None,
                        help="override the trace's run.info lock depth")
    verify.add_argument("--crash", action="store_true",
                        help="also run the crash-point fault-injection "
                             "suite against the WAL")
    verify.add_argument("--max-violations", type=int, default=10,
                        help="violations printed per trace (default: 10)")

    analyze = sub.add_parser(
        "analyze",
        help="analyze a JSONL event trace: blocking chains, hotspots, "
             "critical path",
    )
    analyze.add_argument("trace", help="JSONL trace file (from `repro "
                                       "trace` or `repro sweep --trace-dir`)")
    analyze.add_argument("--prefix-depth", type=int, default=2,
                         help="SPLID divisions for subtree hotspot "
                              "grouping (default: 2)")
    analyze.add_argument("--top", type=int, default=8,
                         help="rows per hotspot/chain listing")

    serve = sub.add_parser(
        "serve",
        help="serve a bib database over the wire protocol (asyncio)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7420,
                       help="TCP port (0 picks a free one; default: 7420)")
    serve.add_argument("--protocol", default="taDOM3+", choices=ALL_PROTOCOLS)
    serve.add_argument("--lock-depth", type=int, default=4)
    serve.add_argument("--isolation", default="repeatable",
                       choices=["none", "uncommitted", "committed",
                                "repeatable", "serializable"])
    serve.add_argument("--scale", type=float, default=0.1,
                       help="bib document scale (default: 0.1)")
    serve.add_argument("--seed", type=int, default=2006)
    serve.add_argument("--wait-timeout-ms", type=float, default=5000.0,
                       help="lock-wait timeout, wall ms (default: 5000)")
    serve.add_argument("--admission", action="store_true",
                       help="shed BEGINs under restart pressure "
                            "(AdmissionController at the network edge)")
    serve.add_argument("--max-pressure", type=int, default=8,
                       help="admission pressure threshold (default: 8)")
    serve.add_argument("--wal", action="store_true",
                       help="enable write-ahead logging")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="stop after this uptime (CI smoke); "
                            "default: serve until Ctrl-C")

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop TaMix load generator (live TCP or deterministic "
             "simulation)",
    )
    loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                         help="drive a live server (default: deterministic "
                              "in-process simulation)")
    loadgen.add_argument("--sim", action="store_true",
                         help="force the deterministic in-process mode "
                              "(the default when --connect is absent)")
    loadgen.add_argument("--clients", type=int, default=100,
                         help="concurrent simulated clients (default: 100)")
    loadgen.add_argument("--duration-ms", type=float, default=10_000.0,
                         help="arrival window, ms (default: 10000)")
    loadgen.add_argument("--rate", type=float, default=100.0,
                         help="total offered load, txn/s (default: 100)")
    loadgen.add_argument("--arrival", default="poisson",
                         choices=["poisson", "uniform"])
    loadgen.add_argument("--think-ms", type=float, default=5.0,
                         help="mean think time per visited node "
                              "(default: 5)")
    loadgen.add_argument("--think-dist", default="exponential",
                         choices=["fixed", "uniform", "exponential"])
    loadgen.add_argument("--zipf", type=float, default=1.1, metavar="S",
                         help="zipf exponent for document hotspots "
                              "(0 = uniform; default: 1.1)")
    loadgen.add_argument("--seed", type=int, default=2006)
    loadgen.add_argument("--pool-size", type=int, default=0,
                         help="live-mode socket cap (0 = min(clients, 64))")
    loadgen.add_argument("--no-retry", action="store_true",
                         help="give up on the first abort/shed instead of "
                              "retrying client-side")
    loadgen.add_argument("--protocol", default="taDOM3+",
                         choices=ALL_PROTOCOLS,
                         help="sim mode: lock protocol (default: taDOM3+)")
    loadgen.add_argument("--lock-depth", type=int, default=4,
                         help="sim mode: lock depth (default: 4)")
    loadgen.add_argument("--scale", type=float, default=0.1,
                         help="sim mode: bib document scale (default: 0.1)")
    loadgen.add_argument("--admission", action="store_true",
                         help="sim mode: shed under restart pressure")
    loadgen.add_argument("--output", default=None, metavar="FILE",
                         help="write the JSON report here (default: stdout)")

    telemetry = sub.add_parser(
        "telemetry",
        help="scrape a server's windowed telemetry series (or render one "
             "from a deterministic sim run)",
    )
    telemetry.add_argument("--connect", default=None, metavar="HOST:PORT",
                           help="scrape a live server (default: run the "
                                "seeded in-process simulation and render "
                                "its series -- byte-identical per seed)")
    telemetry.add_argument("--prom", action="store_true",
                           help="Prometheus text exposition of the "
                                "cumulative snapshot instead of JSON")
    telemetry.add_argument("--json", action="store_true",
                           help="force JSON output (the default)")
    telemetry.add_argument("--output", default=None, metavar="FILE",
                           help="write to a file instead of stdout")
    telemetry.add_argument("--seed", type=int, default=2006,
                           help="sim mode: loadgen seed (default: 2006)")
    telemetry.add_argument("--scale", type=float, default=0.05,
                           help="sim mode: bib document scale")
    telemetry.add_argument("--clients", type=int, default=20,
                           help="sim mode: simulated clients (default: 20)")
    telemetry.add_argument("--duration-ms", type=float, default=4_000.0,
                           help="sim mode: arrival window, simulated ms")
    telemetry.add_argument("--rate", type=float, default=200.0,
                           help="sim mode: offered load, txn/s")
    telemetry.add_argument("--window-ms", type=float, default=1_000.0,
                           help="sim mode: telemetry window, simulated ms")
    telemetry.add_argument("--protocol", default="taDOM3+",
                           choices=ALL_PROTOCOLS,
                           help="sim mode: lock protocol")
    telemetry.add_argument("--lock-depth", type=int, default=4,
                           help="sim mode: lock depth")

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a server's telemetry stream "
             "(SUBSCRIBE)",
    )
    top.add_argument("--connect", required=True, metavar="HOST:PORT",
                     help="the server to watch")
    top.add_argument("--windows", type=int, default=0, metavar="N",
                     help="stop after N windows (default: until Ctrl-C)")
    top.add_argument("--no-clear", action="store_true",
                     help="append each window instead of redrawing "
                          "(useful for logs/pipes)")

    return parser


def _add_cell_arguments(parser) -> None:
    """Shared knobs for commands that run one CLUSTER1 cell."""
    parser.add_argument("--protocol", default="taDOM3+", choices=ALL_PROTOCOLS)
    parser.add_argument("--lock-depth", type=int, default=4)
    parser.add_argument("--isolation", default="repeatable",
                        choices=["none", "uncommitted", "committed",
                                 "repeatable", "serializable"])
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seconds", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--wal", action="store_true",
                        help="enable write-ahead logging (adds wal.* "
                             "metrics)")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "info": _cmd_info,
        "cluster1": _cmd_cluster1,
        "cluster2": _cmd_cluster2,
        "sweep": _cmd_sweep,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "modes": _cmd_modes,
        "xmark": _cmd_xmark,
        "query": _cmd_query,
        "stats": _cmd_stats,
        "report": _cmd_report,
        "analyze": _cmd_analyze,
        "verify": _cmd_verify,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "telemetry": _cmd_telemetry,
        "top": _cmd_top,
    }[args.command]
    return handler(args)


# -- commands -----------------------------------------------------------------


def _cmd_info(_args) -> int:
    print(f"repro {__version__} -- Contest of XML Lock Protocols (VLDB 2006)")
    for group, members in GROUPS.items():
        print(f"  {group:<8} {', '.join(members)}")
    return 0


def _cmd_cluster1(args) -> int:
    result = run_cluster1(
        args.protocol,
        lock_depth=args.lock_depth,
        isolation=args.isolation,
        scale=args.scale,
        run_duration_ms=args.seconds * 1000.0,
        seed=args.seed,
    )
    print(result.summary())
    print(f"  deadlock kinds : {result.deadlocks_by_kind}")
    print(f"  lock stats     : {result.lock_stats}")
    for name, metrics in sorted(result.by_type.items()):
        if metrics.durations:
            print(
                f"  {name:<17} avg={metrics.avg_duration:8.1f} ms  "
                f"min={metrics.min_duration:8.1f}  max={metrics.max_duration:8.1f}"
            )
    return 0


def _cmd_cluster2(args) -> int:
    print("CLUSTER2: single TAdelBook execution time [simulated ms]")
    for name in ALL_PROTOCOLS:
        elapsed = run_cluster2(name, scale=args.scale, seed=args.seed)
        print(f"  {name:<9} ({group_of(name):<7}) {elapsed:9.2f}")
    return 0


def _cmd_sweep(args) -> int:
    from pathlib import Path

    from repro.core.registry import depth_aware_protocols
    from repro.tamix.sweep import SweepRunner, SweepSpec

    protocols = args.protocols or depth_aware_protocols()
    spec = SweepSpec(
        protocols=protocols,
        lock_depths=tuple(args.depths),
        isolations=(args.isolation,),
        runs_per_cell=args.runs,
        scale=args.scale,
        run_duration_ms=args.seconds * 1000.0,
        base_seed=args.seed,
        shards=tuple(args.shards),
        shard_transport=args.shard_transport,
        fault_schedule=args.fault_schedule,
        chaos_seed=args.chaos_seed,
    )
    trace_dir = args.trace_dir
    scratch = None
    if args.verify and trace_dir is None:
        import tempfile

        scratch = tempfile.TemporaryDirectory(prefix="repro-verify-")
        trace_dir = scratch.name
    runner = SweepRunner(spec, workers=args.workers,
                         trace_dir=trace_dir,
                         access_events=args.verify,
                         journal=args.journal,
                         resume=args.resume,
                         cell_timeout_s=args.cell_timeout,
                         cell_retries=args.cell_retries)
    progress = None
    if args.progress:
        total = len(list(spec.cells()))
        state = {"done": 0}

        def progress(cell, outcome):
            state["done"] += 1
            shard_tag = f" s{cell.shards}" if cell.shards > 1 else ""
            print(
                f"[{state['done']}/{total}] {cell.protocol} "
                f"d{cell.lock_depth} {cell.isolation}{shard_tag} "
                f"r{cell.run}: "
                f"committed={outcome.committed} aborted={outcome.aborted}",
                file=sys.stderr, flush=True,
            )

    runner.run(progress=progress, stop_after=args.stop_after)
    if args.resume and runner.resumed_cells:
        print(f"resumed {runner.resumed_cells} cell(s) from {args.journal}",
              file=sys.stderr)
    depths = sorted(set(args.depths))  # series values come back depth-sorted
    for count in args.shards:
        series = runner.series(metric="committed", isolation=args.isolation,
                               shards=count)
        if len(args.shards) > 1 or count > 1:
            print(f"-- shards={count}")
        print("protocol   " + "".join(f"d{d:<7}" for d in depths))
        for name in protocols:
            cells = "".join(f"{value:<8g}" for value in series.get(name, []))
            print(f"{name:<11}" + cells)
    if args.csv:
        Path(args.csv).write_text(runner.to_csv(include_histogram=True))
        print(f"wrote {args.csv}")
    if args.json:
        Path(args.json).write_text(runner.to_json())
        print(f"wrote {args.json}")
    if args.trace_dir:
        traces = sorted(Path(args.trace_dir).glob("*.jsonl"))
        print(f"wrote {len(traces)} traces to {args.trace_dir}")
    if args.verify:
        from repro.verify import verify_trace

        failed = False
        for trace in sorted(Path(trace_dir).glob("*.jsonl")):
            report = verify_trace(trace)
            print(f"verify {trace.name}: {report.summary()}")
            for violation in report.violations[:10]:
                print(f"  {violation}")
            failed = failed or not report.ok
        if scratch is not None:
            scratch.cleanup()
        if failed:
            return 1
    return 0


def _run_observed_cell(args, *, sink=None):
    """Run one CLUSTER1 cell with observability enabled."""
    from repro.obs import Observability
    from repro.tamix.cluster import run_cluster1 as run_cell

    obs = Observability.enabled(
        capacity=None, sink=sink,
        access_events=getattr(args, "access_events", False),
    )
    result = run_cell(
        args.protocol,
        lock_depth=args.lock_depth,
        isolation=args.isolation,
        scale=args.scale,
        run_duration_ms=args.seconds * 1000.0,
        seed=args.seed,
        observability=obs,
        enable_wal=getattr(args, "wal", False),
    )
    obs.close()
    return obs, result


def _cmd_trace(args) -> int:
    obs, result = _run_observed_cell(args, sink=args.output)
    print(result.summary())
    print(f"wrote {args.output} ({len(obs.tracer.events())} events)")
    for kind, count in sorted(obs.tracer.counts_by_kind().items()):
        print(f"  {kind:<20} {count}")
    if args.verify:
        from repro.obs import aggregate, load_jsonl

        totals = aggregate(load_jsonl(args.output))
        checks = [
            ("committed", totals.get("committed", 0), result.committed),
            ("aborted.deadlock", totals.get("aborted.deadlock", 0),
             result.aborted_by_kind["deadlock"]),
            ("aborted.timeout", totals.get("aborted.timeout", 0),
             result.aborted_by_kind["timeout"]),
            ("lock waits", totals.get("lock.block", 0),
             result.lock_stats["waits"]),
        ]
        failed = False
        for label, from_trace, from_metrics in checks:
            ok = from_trace == from_metrics
            failed = failed or not ok
            print(f"  verify {label:<18} trace={from_trace:<6} "
                  f"metrics={from_metrics:<6} {'ok' if ok else 'MISMATCH'}")
        if failed:
            return 1
    return 0


def _cmd_metrics(args) -> int:
    from pathlib import Path

    obs, result = _run_observed_cell(args)
    registry = obs.metrics
    if args.format == "json":
        body = registry.to_json() + "\n"
    elif args.format == "csv":
        body = registry.to_csv()
    else:
        lines = [result.summary()]
        for name, value in registry.as_dict().items():
            if isinstance(value, dict):  # histogram
                lines.append(f"  {name:<24} count={value['count']} "
                             f"mean={value['mean']:.2f} max={value['max']:.2f}")
                lines.append(f"    buckets: {value['buckets']}")
            else:
                lines.append(f"  {name:<24} {value}")
        body = "\n".join(lines) + "\n"
    if args.output:
        Path(args.output).write_text(body)
        print(f"wrote {args.output}")
    else:
        print(body, end="")
    return 0


def _cmd_modes(args) -> int:
    from repro.core import get_protocol

    protocol = get_protocol(args.protocol)
    for space, table in protocol.tables().items():
        if args.space is not None and space != args.space:
            continue
        print(f"=== lock space: {space} ===")
        print(table.format_compatibility())
        print()
        print(table.format_conversions())
        print()
    return 0


def _cmd_xmark(args) -> int:
    from repro.tamix.xmark import generate_auction, run_xmark

    print("read-only XMark-style mix (Section 4.1: cannot stress the "
          "lock manager)")
    for name in ("Node2PLa", "URIX", "taDOM3+"):
        info = generate_auction(scale=args.scale)
        result = run_xmark(name, info=info,
                           run_duration_ms=args.seconds * 1000.0)
        print(f"  {name:<9} queries={result.completed_queries:<6} "
              f"waits={result.lock_waits:<4} deadlocks={result.deadlocks}")
    return 0


def _cmd_query(args) -> int:
    with open(args.file, encoding="utf-8") as handle:
        document = parse_document(handle.read())
    result = evaluate_raw(document, args.path)
    for item in result:
        if isinstance(item, Splid):
            print(serialize_subtree(document, item))
        else:
            print(item)
    return 0 if result else 1


def _cmd_stats(args) -> int:
    with open(args.file, encoding="utf-8") as handle:
        document = parse_document(handle.read())
    for key, value in sorted(document.statistics().items()):
        print(f"{key:<22} {value:,.2f}")
    return 0


#: Order in which result files appear in the collated report.
_REPORT_ORDER = (
    "figure07_isolation", "figure08_star2pl", "figure09_synopsis",
    "figure10_txn_types", "figure11_cluster2", "benchmark_choice",
    "serializable_cost", "mode_profiles", "ablation_splid",
    "ablation_level_locks", "ablation_combination_modes",
    "ablation_buffer_pool",
)


def _cmd_report(args) -> int:
    from pathlib import Path

    if args.sweep_json is not None:
        from repro.tamix.sweep_report import render_html, render_markdown

        render = render_html if args.format == "html" else render_markdown
        body = render(args.sweep_json, title=args.title)
        if args.output:
            Path(args.output).write_text(body, encoding="utf-8")
            print(f"wrote {args.output} ({len(body)} bytes)")
        else:
            print(body, end="")
        return 0

    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        print(f"no results directory at {results_dir}; run "
              "`pytest benchmarks/ --benchmark-only` first",
              file=sys.stderr)
        return 1
    sections = []
    seen = set()
    for stem in _REPORT_ORDER:
        path = results_dir / f"{stem}.txt"
        if path.exists():
            sections.append(path.read_text().rstrip())
            seen.add(path.name)
    for path in sorted(results_dir.glob("*.txt")):
        if path.name not in seen:
            sections.append(path.read_text().rstrip())
    if not sections:
        print(f"no result files in {results_dir}", file=sys.stderr)
        return 1
    divider = "\n\n" + "=" * 72 + "\n\n"
    body = (
        f"Contest of XML Lock Protocols (VLDB 2006) -- evaluation report\n"
        f"(repro {__version__}; {len(sections)} experiments)"
        + divider + divider.join(sections) + "\n"
    )
    if args.output:
        Path(args.output).write_text(body)
        print(f"wrote {args.output} ({len(body)} bytes)")
    else:
        print(body)
    return 0


def _cmd_verify(args) -> int:
    from pathlib import Path

    from repro.verify import run_crash_suite, verify_trace

    if args.target is None and not args.crash:
        print("nothing to do: pass a trace (or trace directory) and/or "
              "--crash", file=sys.stderr)
        return 2
    failed = False
    if args.target is not None:
        target = Path(args.target)
        traces = sorted(target.glob("*.jsonl")) if target.is_dir() else [target]
        if not traces:
            print(f"no .jsonl traces in {target}", file=sys.stderr)
            return 2
        for trace in traces:
            report = verify_trace(
                trace, protocol=args.protocol, lock_depth=args.lock_depth
            )
            print(f"{trace.name}: {report.summary()}")
            for violation in report.violations[:args.max_violations]:
                print(f"  {violation}")
            failed = failed or not report.ok
    if args.crash:
        crash = run_crash_suite(
            protocol=args.protocol or "taDOM3+",
            lock_depth=args.lock_depth if args.lock_depth is not None else 4,
        )
        print(f"crash suite: {crash.summary()}")
        for failure in crash.failures[:args.max_violations]:
            print(f"  {failure}")
        failed = failed or not crash.ok
    return 1 if failed else 0


def _cmd_chaos(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.chaos import load_schedule, run_chaos

    schedule = load_schedule(args.schedule)

    def one_run():
        if args.shards > 1:
            from repro.shard.chaosrun import run_shard_chaos

            return run_shard_chaos(
                schedule,
                seed=args.seed,
                protocol=args.protocol,
                lock_depth=args.lock_depth,
                isolation=args.isolation,
                shards=args.shards,
                scale=args.scale,
                run_duration_ms=args.seconds * 1000.0,
                transport=args.shard_transport,
                trace_path=args.trace,
                chaos_seed=args.chaos_seed,
            )
        return run_chaos(
            schedule,
            seed=args.seed,
            protocol=args.protocol,
            lock_depth=args.lock_depth,
            isolation=args.isolation,
            scale=args.scale,
            run_duration_ms=args.seconds * 1000.0,
            trace_path=args.trace,
        )

    report = one_run()
    print(report.summary())
    for site, rate in sorted(report.injection_rates.items()):
        ops = report.faults
        fired = sum(v for k, v in ops.items() if k.startswith(site + ":"))
        print(f"  {site:<14} rate={rate:7.4f}  faults={fired}")
    for violation in report.violations:
        print(f"  VIOLATION: {violation}")
    for violation in report.oracle_violations[:10]:
        print(f"    {violation}")
    if args.check_determinism:
        second = one_run()
        identical = second.fingerprint == report.fingerprint
        print(f"  determinism: {'ok' if identical else 'MISMATCH'} "
              f"({report.fingerprint[:16]} vs {second.fingerprint[:16]})")
        if not identical:
            return 1
    if args.json:
        Path(args.json).write_text(
            json_module.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _cmd_analyze(args) -> int:
    from repro.obs import TraceAnalysis

    analysis = TraceAnalysis.from_jsonl(
        args.trace, prefix_depth=args.prefix_depth
    )
    print(analysis.render_text(top=args.top))
    return 0


def _cmd_serve(args) -> int:
    import json as json_module

    from repro.chaos.retry import AdmissionPolicy
    from repro.net.server import ServerConfig, run_server

    admission = None
    if args.admission:
        admission = AdmissionPolicy(max_pressure=args.max_pressure)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        protocol=args.protocol,
        lock_depth=args.lock_depth,
        isolation=args.isolation,
        scale=args.scale,
        seed=args.seed,
        wait_timeout_ms=args.wait_timeout_ms,
        enable_wal=args.wal,
        admission=admission,
    )

    def ready(server, host, port):
        info = server.server_info()
        print(f"serving {info['protocol']} depth={info['lock_depth']} "
              f"{info['isolation']} ({info['nodes']} nodes) "
              f"on {host}:{port}", flush=True)

    server = run_server(config, ready=ready, max_seconds=args.max_seconds)
    print(json_module.dumps(server.stats(), sort_keys=True, indent=2))
    return 0


def _cmd_loadgen(args) -> int:
    from pathlib import Path

    from repro.chaos.retry import AdmissionPolicy, RetryPolicy
    from repro.net.loadgen import LoadGenConfig, render_report, run

    if args.connect and args.sim:
        print("--connect and --sim are mutually exclusive", file=sys.stderr)
        return 2
    if args.connect:
        host, _sep, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            print(f"bad --connect {args.connect!r} (want HOST:PORT)",
                  file=sys.stderr)
            return 2
        mode, host, port = "live", host, int(port)
    else:
        mode, host, port = "sim", "127.0.0.1", 7420
    config = LoadGenConfig(
        mode=mode,
        clients=args.clients,
        duration_ms=args.duration_ms,
        rate_tps=args.rate,
        arrival=args.arrival,
        think_ms=args.think_ms,
        think_dist=args.think_dist,
        zipf_s=args.zipf,
        seed=args.seed,
        retry=None if args.no_retry else RetryPolicy(),
        host=host,
        port=port,
        pool_size=args.pool_size,
        protocol=args.protocol,
        lock_depth=args.lock_depth,
        scale=args.scale,
        admission=AdmissionPolicy() if args.admission else None,
    )
    rendered = render_report(run(config))
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def _parse_connect(value: str):
    """``HOST:PORT`` -> ``(host, port)`` or ``None`` on bad input."""
    host, _sep, port = value.rpartition(":")
    if not host or not port.isdigit():
        return None
    return host, int(port)


def _cmd_telemetry(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.obs import render_prometheus

    if args.connect:
        from repro.net.client import RemoteDatabase

        target = _parse_connect(args.connect)
        if target is None:
            print(f"bad --connect {args.connect!r} (want HOST:PORT)",
                  file=sys.stderr)
            return 2
        with RemoteDatabase(*target, client_name="repro-telemetry") as db:
            payload = db.telemetry()
    else:
        from repro.net.loadgen import LoadGenConfig, run_sim

        report = run_sim(LoadGenConfig(
            mode="sim",
            clients=args.clients,
            duration_ms=args.duration_ms,
            rate_tps=args.rate,
            seed=args.seed,
            scale=args.scale,
            protocol=args.protocol,
            lock_depth=args.lock_depth,
            telemetry_window_ms=args.window_ms,
        ))
        payload = report["telemetry"]
    if args.prom:
        body = render_prometheus(payload.get("snapshot") or {})
    else:
        body = json_module.dumps(payload, sort_keys=True, indent=2) + "\n"
    if args.output:
        Path(args.output).write_text(body)
        print(f"wrote {args.output} ({len(body)} bytes)")
    else:
        print(body, end="")
    return 0


def _render_top_window(window, prev=None) -> str:
    """One dashboard frame from a closed telemetry window."""
    counters = window.get("counters") or {}
    gauges = window.get("gauges") or {}
    histograms = window.get("histograms") or {}
    slo = (window.get("slo") or {}).get("request_ms") or {}
    duration_ms = window["t_end_ms"] - window["t_start_ms"]
    duration_s = max(duration_ms / 1000.0, 1e-9)
    committed = counters.get("server.committed", 0)
    aborted = counters.get("server.aborted", 0)
    requests = counters.get("server.requests", 0)
    lines = [
        f"repro top -- window #{window['index']} "
        f"[{window['t_start_ms']:.0f}..{window['t_end_ms']:.0f} ms]",
        f"  throughput   {committed / duration_s:8.1f} commit/s   "
        f"{requests / duration_s:8.1f} req/s",
    ]
    if slo.get("count"):
        lines.append(
            f"  request SLO  p50={slo.get('p50_ms', 0.0):7.2f} ms  "
            f"p99={slo.get('p99_ms', 0.0):7.2f}  "
            f"p999={slo.get('p999_ms', 0.0):7.2f}  "
            f"(n={slo['count']})"
        )
    else:
        lines.append("  request SLO  (no requests this window)")
    reasons = ", ".join(
        f"{name.split('.', 2)[2]}={count}"
        for name, count in sorted(counters.items())
        if name.startswith("server.aborted.") and count
    ) or "none"
    lines.append(f"  aborts       {aborted:<6} [{reasons}]")
    hit_ratio = gauges.get("buffer.hit_ratio")
    if hit_ratio is not None:
        lines.append(f"  buffer       hit-rate {100.0 * hit_ratio:5.1f}%")
    # Lock counters are collector-mirrored gauges (cumulative totals), so
    # contention per window is the delta against the previous frame.
    prev_gauges = (prev or {}).get("gauges") or {}
    lock_reqs = gauges.get("lock.requests")
    if lock_reqs is not None:
        reqs = lock_reqs - prev_gauges.get("lock.requests", 0)
        waits = gauges.get("lock.waits", 0) - prev_gauges.get("lock.waits", 0)
        pct = 100.0 * waits / reqs if reqs > 0 else 0.0
        lines.append(
            f"  locks        {reqs:<8} requests  {waits:<6} waits "
            f"({pct:.1f}% contended)"
        )
    lag = histograms.get("server.loop_lag_ms") or {}
    if lag.get("count"):
        lines.append(
            f"  loop lag     mean {lag['total'] / lag['count']:6.2f} ms "
            f"over {lag['count']} probe(s)"
        )
    return "\n".join(lines)


def _cmd_top(args) -> int:
    from repro.net.client import RemoteDatabase

    target = _parse_connect(args.connect)
    if target is None:
        print(f"bad --connect {args.connect!r} (want HOST:PORT)",
              file=sys.stderr)
        return 2
    remaining = args.windows if args.windows > 0 else None
    prev = None
    try:
        with RemoteDatabase(*target, client_name="repro-top") as db:
            while remaining is None or remaining > 0:
                # SUBSCRIBE streams in bounded batches so an open-ended
                # watch never asks the server for an unbounded stream.
                batch = 1000 if remaining is None else min(remaining, 1000)
                streamed = 0
                for window in db.subscribe(batch):
                    streamed += 1
                    frame = _render_top_window(window, prev)
                    prev = window
                    if args.no_clear:
                        print(frame, flush=True)
                    else:
                        print(f"\x1b[2J\x1b[H{frame}", flush=True)
                if db.last_dropped_windows:
                    # The server skipped windows because this consumer
                    # fell behind -- say so instead of silently showing
                    # a gap-free picture.
                    print(
                        f"  (dropped {db.last_dropped_windows} window(s): "
                        f"consumer slower than the sampler)",
                        file=sys.stderr, flush=True,
                    )
                if remaining is not None:
                    remaining -= streamed
                if streamed == 0:
                    break  # server stopped streaming (shutdown)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
