"""B*-tree (B+-tree with chained leaves) over the buffer manager.

This is the index structure of Figure 6: variable-length byte keys (SPLIDs
in their roles as keys *and* pointers), leaf pages chained for sequential
document processing, and every page access routed through the buffer
manager so that the I/O counters reflect real reference locality.

Inner pages store ``separator_key -> child_page_id`` entries; the leftmost
separator of the root chain is the empty key, so routing always finds a
floor entry.  Leaf pages store the actual ``key -> value`` records.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set, Tuple

from repro.errors import PageOverflowError, StorageError
from repro.storage.buffer import BufferManager
from repro.storage.page import Page


def prefix_upper_bound(prefix: bytes) -> Optional[bytes]:
    """Smallest byte string greater than every string with ``prefix``.

    Returns ``None`` when no such bound exists (prefix is all ``0xFF``),
    in which case a scan must run to the end of the tree.
    """
    trimmed = prefix.rstrip(b"\xff")
    if not trimmed:
        return None
    return trimmed[:-1] + bytes((trimmed[-1] + 1,))


def _encode_child(page_id: int) -> bytes:
    return page_id.to_bytes(8, "big")


def _decode_child(value: bytes) -> int:
    return int.from_bytes(value, "big")


class BPTree:
    """A byte-keyed B+-tree with ordered navigation primitives.

    Beyond ``get``/``put``/``delete``, the tree offers the order
    operations the document store needs for sibling/child navigation:
    ``ceiling`` (first >=), ``higher`` (first >), ``floor`` (last <=),
    ``lower`` (last <), plus forward/backward range iteration along the
    leaf chain.
    """

    #: Leaves below this occupancy try to merge into their left sibling.
    MERGE_THRESHOLD = 0.25

    def __init__(self, buffer: BufferManager):
        self.buffer = buffer
        root = buffer.allocate()
        self._root_id = root.page_id
        self._leaf_ids: Set[int] = {root.page_id}
        self._entry_count = 0

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return self._entry_count

    @property
    def root_id(self) -> int:
        return self._root_id

    def is_leaf(self, page_id: int) -> bool:
        return page_id in self._leaf_ids

    def height(self) -> int:
        """Number of levels (1 = the root is a leaf)."""
        levels = 1
        page_id = self._root_id
        while not self.is_leaf(page_id):
            page = self.buffer.fix(page_id)
            _key, value = page.entry_at(0)
            page_id = _decode_child(value)
            levels += 1
        return levels

    # -- point access ---------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        leaf = self._descend(key)
        return leaf.get(key)

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise StorageError("B-tree keys and values must be bytes")
        existed = self._insert(self._root_id, key, value)
        if not existed:
            self._entry_count += 1

    def delete(self, key: bytes) -> bool:
        removed = self._delete(self._root_id, key, parent=None, slot=None)
        if removed:
            self._entry_count -= 1
        self._shrink_root()
        return removed

    # -- order navigation --------------------------------------------------------

    def ceiling(self, key: bytes) -> Optional[Tuple[bytes, bytes]]:
        """First entry with ``entry_key >= key``."""
        leaf = self._descend(key)
        idx = leaf.position_of(key)
        return self._entry_or_next(leaf, idx)

    def higher(self, key: bytes) -> Optional[Tuple[bytes, bytes]]:
        """First entry with ``entry_key > key``."""
        leaf = self._descend(key)
        idx = leaf.position_of(key)
        if idx < len(leaf) and leaf.entry_at(idx)[0] == key:
            idx += 1
        return self._entry_or_next(leaf, idx)

    def floor(self, key: bytes) -> Optional[Tuple[bytes, bytes]]:
        """Last entry with ``entry_key <= key``."""
        leaf = self._descend(key)
        idx = leaf.position_of(key)
        if idx < len(leaf) and leaf.entry_at(idx)[0] == key:
            return leaf.entry_at(idx)
        return self._entry_or_previous(leaf, idx - 1)

    def lower(self, key: bytes) -> Optional[Tuple[bytes, bytes]]:
        """Last entry with ``entry_key < key``."""
        leaf = self._descend(key)
        idx = leaf.position_of(key)
        return self._entry_or_previous(leaf, idx - 1)

    def first(self) -> Optional[Tuple[bytes, bytes]]:
        return self.ceiling(b"")

    def last(self) -> Optional[Tuple[bytes, bytes]]:
        page_id = self._root_id
        while not self.is_leaf(page_id):
            page = self.buffer.fix(page_id)
            page_id = _decode_child(page.entry_at(len(page) - 1)[1])
        leaf = self.buffer.fix(page_id)
        return self._entry_or_previous(leaf, len(leaf) - 1)

    # -- iteration --------------------------------------------------------------

    def items(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Forward scan over ``start <= key < end`` along the leaf chain."""
        leaf = self._descend(start or b"")
        idx = leaf.position_of(start or b"")
        while True:
            while idx >= len(leaf):
                if leaf.next_page is None:
                    return
                leaf = self.buffer.fix(leaf.next_page)
                idx = 0
            key, value = leaf.entry_at(idx)
            if end is not None and key >= end:
                return
            yield key, value
            idx += 1

    def items_reverse(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Backward scan over ``end <= key < start`` (start exclusive)."""
        if start is None:
            tail = self.last()
            if tail is None:
                return
            leaf = self._descend(tail[0])
            idx = leaf.position_of(tail[0])
        else:
            leaf = self._descend(start)
            idx = leaf.position_of(start) - 1
        while True:
            while idx < 0:
                if leaf.prev_page is None:
                    return
                leaf = self.buffer.fix(leaf.prev_page)
                idx = len(leaf) - 1
            key, value = leaf.entry_at(idx)
            if end is not None and key < end:
                return
            yield key, value
            idx -= 1

    def prefix_items(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """All entries whose key starts with ``prefix``, in order."""
        return self.items(prefix, prefix_upper_bound(prefix))

    # -- statistics ----------------------------------------------------------------

    def leaf_occupancy(self) -> float:
        """Mean occupancy over all leaf pages."""
        if not self._leaf_ids:
            return 0.0
        total = 0.0
        for page_id in self._leaf_ids:
            total += self.buffer.page_file.read(page_id).occupancy
        return total / len(self._leaf_ids)

    def leaf_count(self) -> int:
        return len(self._leaf_ids)

    # -- descent and structure modification -----------------------------------------

    def _descend(self, key: bytes) -> Page:
        page_id = self._root_id
        while not self.is_leaf(page_id):
            page = self.buffer.fix(page_id)
            page_id = self._route(page, key)
        return self.buffer.fix(page_id)

    @staticmethod
    def _route(inner: Page, key: bytes) -> int:
        idx = inner.position_of(key)
        if idx < len(inner) and inner.entry_at(idx)[0] == key:
            return _decode_child(inner.entry_at(idx)[1])
        if idx == 0:
            # Left fence: route to the leftmost child.
            return _decode_child(inner.entry_at(0)[1])
        return _decode_child(inner.entry_at(idx - 1)[1])

    def _insert(self, page_id: int, key: bytes, value: bytes) -> bool:
        """Recursive insert; returns True if the key already existed."""
        page = self.buffer.fix(page_id, for_update=True)
        if self.is_leaf(page_id):
            existed = page.get(key) is not None
            if existed:
                try:
                    page.put(key, value)
                except PageOverflowError:
                    # Replacement grew past the page: re-insert via a split.
                    page.delete(key)
                    self._split_child(page_id, key, value, leaf=True)
                return True
            if page.fits(key, value):
                page.put(key, value)
                return False
            self._split_child(page_id, key, value, leaf=True)
            return False
        child_id = self._route(page, key)
        return self._insert(child_id, key, value)

    def _split_child(self, page_id: int, key: bytes, value: bytes, *, leaf: bool) -> None:
        """Split ``page_id`` and retry the pending insert."""
        page = self.buffer.page_file.read(page_id)
        sibling = self.buffer.allocate()
        if leaf:
            self._leaf_ids.add(sibling.page_id)
        separator = page.split_off_upper_half(sibling)
        if leaf:
            sibling.next_page = page.next_page
            sibling.prev_page = page.page_id
            if page.next_page is not None:
                after = self.buffer.page_file.read(page.next_page)
                after.prev_page = sibling.page_id
            page.next_page = sibling.page_id
        target = sibling if key >= separator else page
        target.put(key, value)
        self._insert_separator(page_id, separator, sibling.page_id)

    def _insert_separator(self, left_id: int, separator: bytes, right_id: int) -> None:
        parent_id = self._find_parent(self._root_id, left_id)
        if parent_id is None:
            # left_id was the root: grow a new root.
            new_root = self.buffer.allocate()
            new_root.put(b"", _encode_child(left_id))
            new_root.put(separator, _encode_child(right_id))
            self._root_id = new_root.page_id
            return
        parent = self.buffer.fix(parent_id, for_update=True)
        if parent.fits(separator, _encode_child(right_id)):
            parent.put(separator, _encode_child(right_id))
            return
        self._split_child(parent_id, separator, _encode_child(right_id), leaf=False)

    def _find_parent(self, current_id: int, child_id: int) -> Optional[int]:
        """Locate the parent of ``child_id`` by routing from the root.

        Inner nodes are few and hot (the paper's "reference locality in the
        B*-trees"), so this re-descent is cheap and keeps the pages free of
        parent pointers.
        """
        if current_id == child_id:
            return None
        child_min = self._min_key_of(child_id)
        page_id = current_id
        while not self.is_leaf(page_id):
            page = self.buffer.fix(page_id)
            next_id = self._route(page, child_min)
            if next_id == child_id:
                return page_id
            page_id = next_id
        raise StorageError(f"page {child_id} not reachable from {current_id}")

    def _min_key_of(self, page_id: int) -> bytes:
        page = self.buffer.page_file.read(page_id)
        if len(page) == 0:
            return b""
        return page.min_key()

    def _delete(
        self,
        page_id: int,
        key: bytes,
        parent: Optional[Page],
        slot: Optional[int],
    ) -> bool:
        page = self.buffer.fix(page_id, for_update=True)
        if self.is_leaf(page_id):
            removed = page.delete(key)
            if removed and parent is not None:
                self._maybe_merge_leaf(page, parent, slot)
            return removed
        idx = page.position_of(key)
        if not (idx < len(page) and page.entry_at(idx)[0] == key):
            idx = max(idx - 1, 0)
        child_id = _decode_child(page.entry_at(idx)[1])
        return self._delete(child_id, key, page, idx)

    def _maybe_merge_leaf(self, leaf: Page, parent: Page, slot: int) -> None:
        if len(leaf) == 0:
            if len(parent) > 1:
                self._unlink_leaf(leaf, parent, slot)
            return
        if leaf.occupancy >= self.MERGE_THRESHOLD or slot == 0:
            return
        left_id = _decode_child(parent.entry_at(slot - 1)[1])
        if not self.is_leaf(left_id):
            return
        left = self.buffer.fix(left_id, for_update=True)
        if left.free_bytes >= leaf.used_bytes:
            left.absorb(leaf)
            self._unlink_leaf(leaf, parent, slot)
            return
        self._borrow_from_left(leaf, left, parent, slot)

    def _borrow_from_left(self, leaf: Page, left: Page, parent: Page,
                          slot: int) -> None:
        """Rebalance: shift the left sibling's largest entries over.

        Used when the underfull leaf cannot be absorbed (the combined
        pages would overflow); afterwards the parent's separator for the
        leaf is lowered to its new minimum key so routing stays correct.
        """
        target = self.MERGE_THRESHOLD * 2
        moved = False
        while left.occupancy > 0.5 and leaf.occupancy < target and len(left) > 1:
            key, value = left.entry_at(len(left) - 1)
            if not leaf.fits(key, value):
                break
            old_sep, child_value = parent.entry_at(slot)
            # The parent must be able to hold the lowered separator.
            if len(parent.keys) and parent.free_bytes + len(old_sep) < len(key):
                break
            left.delete(key)
            leaf.put(key, value)
            moved = True
        if not moved:
            return
        old_sep, child_value = parent.entry_at(slot)
        parent.delete(old_sep)
        parent.put(leaf.min_key(), child_value)

    def _unlink_leaf(self, leaf: Page, parent: Page, slot: int) -> None:
        if leaf.prev_page is not None:
            self.buffer.page_file.read(leaf.prev_page).next_page = leaf.next_page
        if leaf.next_page is not None:
            self.buffer.page_file.read(leaf.next_page).prev_page = leaf.prev_page
        parent.delete(parent.entry_at(slot)[0])
        self._leaf_ids.discard(leaf.page_id)
        self.buffer.free(leaf.page_id)

    def _shrink_root(self) -> None:
        while not self.is_leaf(self._root_id):
            root = self.buffer.page_file.read(self._root_id)
            if len(root) != 1:
                return
            child_id = _decode_child(root.entry_at(0)[1])
            self.buffer.free(self._root_id)
            self._root_id = child_id

    # -- leaf helpers -----------------------------------------------------------------

    def _entry_or_next(self, leaf: Page, idx: int) -> Optional[Tuple[bytes, bytes]]:
        while idx >= len(leaf):
            if leaf.next_page is None:
                return None
            leaf = self.buffer.fix(leaf.next_page)
            idx = 0
        return leaf.entry_at(idx)

    def _entry_or_previous(self, leaf: Page, idx: int) -> Optional[Tuple[bytes, bytes]]:
        while idx < 0:
            if leaf.prev_page is None:
                return None
            leaf = self.buffer.fix(leaf.prev_page)
            idx = len(leaf) - 1
        return leaf.entry_at(idx)
