"""Element index and ID index (Figure 6b).

"An element index is created consisting of a name directory with all
element names occurring in the XML document; for each specific element
name, in turn, a node-reference index may be maintained which addresses
the corresponding elements using their SPLIDs."

Both indexes live in their own B*-tree over the shared buffer manager:

* the **element index** is keyed ``surrogate(2 bytes) + SPLID bytes`` with
  empty values -- a node-reference index per name, scanned by prefix;
* the **ID index** maps the value of an ``id`` attribute to the SPLID of
  the owning element, supporting ``getElementById`` direct jumps.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import StorageError
from repro.splid import Splid, decode, encode
from repro.storage.bptree import BPTree
from repro.storage.buffer import BufferManager
from repro.storage.vocabulary import Vocabulary


class ElementIndex:
    """Name directory + per-name node-reference indexes."""

    def __init__(self, buffer: BufferManager, vocabulary: Vocabulary):
        self.vocabulary = vocabulary
        self.tree = BPTree(buffer)

    @staticmethod
    def _key(surrogate: int, splid: Splid) -> bytes:
        return surrogate.to_bytes(2, "big") + encode(splid)

    def add(self, name: str, splid: Splid) -> None:
        surrogate = self.vocabulary.intern(name)
        self.tree.put(self._key(surrogate, splid), b"")

    def remove(self, name: str, splid: Splid) -> bool:
        if name not in self.vocabulary:
            return False
        surrogate = self.vocabulary.surrogate_of(name)
        return self.tree.delete(self._key(surrogate, splid))

    def lookup(self, name: str) -> Iterator[Splid]:
        """All elements with ``name``, in document order."""
        if name not in self.vocabulary:
            return
        surrogate = self.vocabulary.surrogate_of(name)
        prefix = surrogate.to_bytes(2, "big")
        for key, _value in self.tree.prefix_items(prefix):
            yield decode(key[2:])

    def lookup_list(self, name: str) -> List[Splid]:
        return list(self.lookup(name))

    def count(self, name: str) -> int:
        return sum(1 for _s in self.lookup(name))

    def names(self) -> List[str]:
        """The name directory (names with at least one reference)."""
        seen = set()
        result: List[str] = []
        for key, _value in self.tree.items():
            surrogate = int.from_bytes(key[:2], "big")
            if surrogate not in seen:
                seen.add(surrogate)
                result.append(self.vocabulary.name_of(surrogate))
        return result


class IdIndex:
    """Maps ``id`` attribute values to element SPLIDs (direct jumps)."""

    def __init__(self, buffer: BufferManager):
        self.tree = BPTree(buffer)

    def add(self, id_value: str, element: Splid) -> None:
        key = id_value.encode("utf-8")
        existing = self.tree.get(key)
        if existing is not None and existing != encode(element):
            raise StorageError(f"duplicate id {id_value!r}")
        self.tree.put(key, encode(element))

    def remove(self, id_value: str) -> bool:
        return self.tree.delete(id_value.encode("utf-8"))

    def lookup(self, id_value: str) -> Optional[Splid]:
        value = self.tree.get(id_value.encode("utf-8"))
        return None if value is None else decode(value)

    def __len__(self) -> int:
        return len(self.tree)

    def ids(self) -> Iterator[str]:
        for key, _value in self.tree.items():
            yield key.decode("utf-8")
