"""Vocabulary: element/attribute name surrogates.

"Stored tree nodes are additionally compressed by a vocabulary.  Instead
of storing their names, surrogates (<= 2 bytes) are used to identify them"
(Section 3.2).  The vocabulary is an append-only bidirectional map from
names to 16-bit surrogates.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import VocabularyError

#: Two-byte surrogates bound the vocabulary size.
MAX_SURROGATES = 1 << 16


class Vocabulary:
    """Bidirectional name <-> surrogate map for one document container."""

    def __init__(self):
        self._by_name: Dict[str, int] = {}
        self._by_surrogate: List[str] = []

    def __len__(self) -> int:
        return len(self._by_surrogate)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def intern(self, name: str) -> int:
        """Return the surrogate for ``name``, assigning one if new."""
        surrogate = self._by_name.get(name)
        if surrogate is not None:
            return surrogate
        if len(self._by_surrogate) >= MAX_SURROGATES:
            raise VocabularyError("vocabulary exhausted (65536 names)")
        surrogate = len(self._by_surrogate)
        self._by_name[name] = surrogate
        self._by_surrogate.append(name)
        return surrogate

    def surrogate_of(self, name: str) -> int:
        """Surrogate lookup without interning; raises if unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise VocabularyError(f"unknown name {name!r}") from None

    def name_of(self, surrogate: int) -> str:
        if 0 <= surrogate < len(self._by_surrogate):
            return self._by_surrogate[surrogate]
        raise VocabularyError(f"unknown surrogate {surrogate}")

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._by_name.items())

    def encoded_size(self) -> int:
        """Approximate on-disk footprint of the name directory."""
        return sum(len(name.encode("utf-8")) + 3 for name in self._by_surrogate)
