"""Node records: the serialized value part of a document-store entry.

A B*-tree entry is "the byte representation of the SPLID as the key part
and the byte representation of the actual node as the value part"
(Section 3.2).  A record carries the taDOM node kind, the vocabulary
surrogate of its name (elements/attributes), and the content payload
(string nodes).

The wire format is:  1 byte kind | 2 bytes surrogate | content bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from repro.errors import StorageError


class NodeKind(IntEnum):
    """The node kinds of the taDOM storage model (Figure 5)."""

    ELEMENT = 1
    ATTRIBUTE_ROOT = 2
    ATTRIBUTE = 3
    TEXT = 4
    STRING = 5
    DOCUMENT = 6


#: Surrogate placeholder for kinds that carry no name.
NO_NAME = 0xFFFF


@dataclass(frozen=True)
class NodeRecord:
    """One stored node: kind + name surrogate + content payload."""

    kind: NodeKind
    name_surrogate: int = NO_NAME
    content: bytes = b""

    def encode(self) -> bytes:
        if not 0 <= self.name_surrogate <= NO_NAME:
            raise StorageError(f"surrogate {self.name_surrogate} out of range")
        return (
            bytes((self.kind,))
            + self.name_surrogate.to_bytes(2, "big")
            + self.content
        )

    @classmethod
    def decode(cls, data: bytes) -> "NodeRecord":
        if len(data) < 3:
            raise StorageError(f"node record too short: {len(data)} bytes")
        try:
            kind = NodeKind(data[0])
        except ValueError:
            raise StorageError(f"unknown node kind {data[0]}") from None
        surrogate = int.from_bytes(data[1:3], "big")
        return cls(kind, surrogate, bytes(data[3:]))

    # -- convenience constructors ------------------------------------------

    @classmethod
    def element(cls, surrogate: int) -> "NodeRecord":
        return cls(NodeKind.ELEMENT, surrogate)

    @classmethod
    def attribute_root(cls) -> "NodeRecord":
        return cls(NodeKind.ATTRIBUTE_ROOT)

    @classmethod
    def attribute(cls, surrogate: int) -> "NodeRecord":
        return cls(NodeKind.ATTRIBUTE, surrogate)

    @classmethod
    def text(cls) -> "NodeRecord":
        return cls(NodeKind.TEXT)

    @classmethod
    def string(cls, content: str) -> "NodeRecord":
        return cls(NodeKind.STRING, NO_NAME, content.encode("utf-8"))

    @property
    def text_content(self) -> Optional[str]:
        if self.kind is not NodeKind.STRING:
            return None
        return self.content.decode("utf-8")

    def renamed(self, surrogate: int) -> "NodeRecord":
        """Copy with a new name surrogate (DOM3 renameNode)."""
        return NodeRecord(self.kind, surrogate, self.content)

    def with_content(self, content: str) -> "NodeRecord":
        """Copy with replaced string content."""
        return NodeRecord(self.kind, self.name_surrogate, content.encode("utf-8"))
