"""Document store: SPLID-keyed node storage in a single B*-tree.

"A single B*-tree is sufficient for storing the entire XML document in
left-most depth-first order, where an entry is formed by the byte
representation of the SPLID as the key part and the byte representation of
the actual node as the value part" (Section 3.2).

All tree navigation (first/last child, next/previous sibling, subtree
scans) is computed from key order alone -- exactly the property that lets
the lock manager stay off the document for ancestor paths, and that makes
direct jumps cheap for the protocols using intention locks.

DOM navigation skips the *meta* children of the taDOM model (attribute
roots below elements, string nodes below text/attribute nodes, all labeled
with division 1); dedicated accessors expose them.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.errors import NodeNotFound
from repro.splid import Splid, encode, decode
from repro.splid.splid import META_DIVISION
from repro.storage.bptree import BPTree, prefix_upper_bound
from repro.storage.buffer import BufferManager, make_buffered_store
from repro.storage.record import NodeRecord


class DocumentStore:
    """One stored XML document: B*-tree of ``SPLID -> NodeRecord``."""

    def __init__(self, buffer: Optional[BufferManager] = None):
        self.buffer = buffer if buffer is not None else make_buffered_store()
        self.tree = BPTree(self.buffer)

    # -- point operations ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.tree)

    def exists(self, splid: Splid) -> bool:
        return encode(splid) in self.tree

    def get(self, splid: Splid) -> NodeRecord:
        value = self.tree.get(encode(splid))
        if value is None:
            raise NodeNotFound(f"no node {splid}")
        return NodeRecord.decode(value)

    def try_get(self, splid: Splid) -> Optional[NodeRecord]:
        value = self.tree.get(encode(splid))
        return None if value is None else NodeRecord.decode(value)

    def put(self, splid: Splid, record: NodeRecord) -> None:
        self.tree.put(encode(splid), record.encode())

    def delete(self, splid: Splid) -> bool:
        return self.tree.delete(encode(splid))

    # -- document-order navigation ------------------------------------------

    def first_node(self) -> Optional[Splid]:
        entry = self.tree.first()
        return None if entry is None else decode(entry[0])

    def next_in_document_order(self, splid: Splid) -> Optional[Splid]:
        entry = self.tree.higher(encode(splid))
        return None if entry is None else decode(entry[0])

    def previous_in_document_order(self, splid: Splid) -> Optional[Splid]:
        entry = self.tree.lower(encode(splid))
        return None if entry is None else decode(entry[0])

    def next_following(self, splid: Splid) -> Optional[Splid]:
        """First node after the entire subtree of ``splid``."""
        bound = prefix_upper_bound(encode(splid))
        if bound is None:
            return None
        entry = self.tree.ceiling(bound)
        return None if entry is None else decode(entry[0])

    # -- DOM-style navigation --------------------------------------------------

    def first_child(self, parent: Splid) -> Optional[Splid]:
        """First non-meta child (DOM ``getFirstChild``)."""
        key = encode(parent)
        entry = self.tree.higher(key)
        while entry is not None:
            if not entry[0].startswith(key):
                return None
            candidate = decode(entry[0])
            if candidate.parent != parent:
                return None
            if candidate.divisions[-1] != META_DIVISION:
                return candidate
            # Skip the meta child's whole subtree (attribute root / string).
            bound = prefix_upper_bound(entry[0])
            if bound is None:
                return None
            entry = self.tree.ceiling(bound)
        return None

    def last_child(self, parent: Splid) -> Optional[Splid]:
        """Last non-meta child (DOM ``getLastChild``)."""
        bound = prefix_upper_bound(encode(parent))
        entry = self.tree.lower(bound) if bound is not None else self.tree.last()
        if entry is None:
            return None
        candidate = decode(entry[0])
        if not candidate.is_self_or_descendant_of(parent) or candidate == parent:
            return None
        child = candidate.ancestor_at_level(parent.level + 1)
        while child.divisions[-1] == META_DIVISION:
            previous = self.previous_sibling_any(child)
            if previous is None:
                return None
            child = previous
        return child

    def next_sibling(self, splid: Splid) -> Optional[Splid]:
        """Next non-meta sibling (DOM ``getNextSibling``)."""
        sibling = self.next_sibling_any(splid)
        # Meta children sort first, so following siblings are never meta.
        return sibling

    def next_sibling_any(self, splid: Splid) -> Optional[Splid]:
        parent = splid.parent
        if parent is None:
            return None
        # The first node after this subtree is either the next sibling or
        # the sibling of some ancestor (when this node is the last child).
        following = self.next_following(splid)
        if following is None or following.parent != parent:
            return None
        return following

    def previous_sibling(self, splid: Splid) -> Optional[Splid]:
        """Previous non-meta sibling (DOM ``getPreviousSibling``)."""
        sibling = self.previous_sibling_any(splid)
        if sibling is not None and sibling.divisions[-1] == META_DIVISION:
            return None
        return sibling

    def previous_sibling_any(self, splid: Splid) -> Optional[Splid]:
        parent = splid.parent
        if parent is None:
            return None
        entry = self.tree.lower(encode(splid))
        if entry is None:
            return None
        previous = decode(entry[0])
        if previous == parent or not previous.is_descendant_of(parent):
            return None
        if previous.level < splid.level:
            return None
        return previous.ancestor_at_level(splid.level)

    def children(self, parent: Splid) -> Iterator[Splid]:
        """All non-meta children in document order (``getChildNodes``)."""
        child = self.first_child(parent)
        while child is not None:
            yield child
            child = self.next_sibling(child)

    # -- the remaining XPath axes (Section 3.2: "efficient evaluation of
    # all axes frequently occurring in XPath or XQuery path expressions") --

    def following_siblings(self, node: Splid) -> Iterator[Splid]:
        sibling = self.next_sibling(node)
        while sibling is not None:
            yield sibling
            sibling = self.next_sibling(sibling)

    def preceding_siblings(self, node: Splid) -> Iterator[Splid]:
        """Preceding siblings, nearest first (reverse document order)."""
        sibling = self.previous_sibling(node)
        while sibling is not None:
            yield sibling
            sibling = self.previous_sibling(sibling)

    def ancestors(self, node: Splid) -> Iterator[Splid]:
        """Stored ancestors, parent first -- no document access needed for
        the labels themselves (the SPLID property); existence is checked
        against the store."""
        for ancestor in node.ancestors():
            if self.exists(ancestor):
                yield ancestor

    def descendants(self, node: Splid) -> Iterator[Splid]:
        """All non-meta descendants in document order."""
        for splid in self.subtree_labels(node):
            if splid != node and not splid.is_meta:
                yield splid

    def following(self, node: Splid) -> Iterator[Splid]:
        """The XPath ``following`` axis: everything after the subtree."""
        current = self.next_following(node)
        while current is not None:
            if not current.is_meta:
                yield current
            current = self.next_in_document_order(current)

    def child_count(self, parent: Splid) -> int:
        return sum(1 for _child in self.children(parent))

    # -- meta-node access --------------------------------------------------------

    def attribute_root(self, element: Splid) -> Optional[Splid]:
        root = element.attribute_root
        return root if self.exists(root) else None

    def attributes(self, element: Splid) -> Iterator[Splid]:
        """All attribute nodes of an element (``getAttributes``)."""
        root = self.attribute_root(element)
        if root is None:
            return
        key = encode(root)
        entry = self.tree.higher(key)
        while entry is not None and entry[0].startswith(key):
            candidate = decode(entry[0])
            if candidate.parent == root:
                yield candidate
            entry = self.tree.higher(entry[0])

    def string_child(self, owner: Splid) -> Optional[Splid]:
        """The string node below a text or attribute node."""
        candidate = owner.string_node
        return candidate if self.exists(candidate) else None

    # -- subtree operations ---------------------------------------------------------

    def subtree(self, root: Splid) -> Iterator[Tuple[Splid, NodeRecord]]:
        """The subtree of ``root`` (inclusive) in document order."""
        for key, value in self.tree.prefix_items(encode(root)):
            yield decode(key), NodeRecord.decode(value)

    def subtree_labels(self, root: Splid) -> Iterator[Splid]:
        for key, _value in self.tree.prefix_items(encode(root)):
            yield decode(key)

    def subtree_size(self, root: Splid) -> int:
        return sum(1 for _ in self.tree.prefix_items(encode(root)))

    def delete_subtree(self, root: Splid) -> int:
        """Delete the subtree of ``root`` (inclusive); returns node count."""
        keys = [key for key, _value in self.tree.prefix_items(encode(root))]
        for key in keys:
            self.tree.delete(key)
        return len(keys)

    def scan(self) -> Iterator[Tuple[Splid, NodeRecord]]:
        """Full document scan in document order."""
        for key, value in self.tree.items():
            yield decode(key), NodeRecord.decode(value)
