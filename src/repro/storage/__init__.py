"""Storage substrate: pages, buffer manager, B*-trees, and indexes.

Implements Section 3.1/3.2 of the paper: the document container and
document index as one B*-tree keyed by SPLID bytes, the element index
(name directory + node-reference indexes), the ID index for direct jumps,
the vocabulary of name surrogates, and an LRU buffer manager whose I/O
counters feed the TaMix cost model.
"""

from repro.storage.bptree import BPTree, prefix_upper_bound
from repro.storage.buffer import (
    BufferManager,
    IoStatistics,
    PageFile,
    make_buffered_store,
)
from repro.storage.document_store import DocumentStore
from repro.storage.element_index import ElementIndex, IdIndex
from repro.storage.page import DEFAULT_PAGE_SIZE, Page, entry_size
from repro.storage.record import NO_NAME, NodeKind, NodeRecord
from repro.storage.vocabulary import Vocabulary

__all__ = [
    "BPTree",
    "BufferManager",
    "DEFAULT_PAGE_SIZE",
    "DocumentStore",
    "ElementIndex",
    "IdIndex",
    "IoStatistics",
    "NO_NAME",
    "NodeKind",
    "NodeRecord",
    "Page",
    "PageFile",
    "Vocabulary",
    "entry_size",
    "make_buffered_store",
    "prefix_upper_bound",
]
