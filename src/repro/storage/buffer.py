"""Buffer manager: a fixed-size LRU page pool with I/O accounting.

The paper attributes part of the lock-protocol cost differences to disk
accesses (e.g. the *-2PL subtree scans in CLUSTER2 "may include accesses to
disks").  The buffer manager makes those costs observable: every page
access is a *logical* read; accesses to pages not resident in the pool are
*physical* reads.  The TaMix cost model converts these counters into
simulated time.

Pages live in a :class:`PageFile` (the "disk").  Residency is what the
LRU pool tracks; page contents are shared Python objects either way, which
keeps the simulation cheap while the hit/miss behaviour stays faithful.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from repro.errors import StorageError
from repro.obs import BUFFER_EVICT, BUFFER_FIX, BUFFER_MISS, NULL_TRACER
from repro.storage.page import DEFAULT_PAGE_SIZE, Page


@dataclass
class IoStatistics:
    """Counters the cost model and the storage examples read."""

    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    evictions: int = 0
    #: Simulated milliseconds added by injected latency faults and fault
    #: retries (repro.chaos); charged by the cost model like extra I/O time.
    fault_delay_ms: float = 0.0

    def snapshot(self) -> "IoStatistics":
        return IoStatistics(
            self.logical_reads,
            self.physical_reads,
            self.physical_writes,
            self.evictions,
            self.fault_delay_ms,
        )

    def delta_since(self, earlier: "IoStatistics") -> "IoStatistics":
        return IoStatistics(
            self.logical_reads - earlier.logical_reads,
            self.physical_reads - earlier.physical_reads,
            self.physical_writes - earlier.physical_writes,
            self.evictions - earlier.evictions,
            self.fault_delay_ms - earlier.fault_delay_ms,
        )

    @property
    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads


class PageFile:
    """The backing store ("disk"): allocates and owns all pages."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self._pages: Dict[int, Page] = {}
        self._next_id = 0

    def allocate(self) -> Page:
        page = Page(self._next_id, self.page_size)
        self._pages[self._next_id] = page
        self._next_id += 1
        return page

    def free(self, page_id: int) -> None:
        self._pages.pop(page_id, None)

    def read(self, page_id: int) -> Page:
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"page {page_id} does not exist") from None

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def occupancy(self) -> float:
        """Mean occupancy over all allocated pages (paper: > 96 %)."""
        if not self._pages:
            return 0.0
        return sum(p.occupancy for p in self._pages.values()) / len(self._pages)


class BufferManager:
    """LRU page pool in front of a :class:`PageFile`.

    ``fix`` brings a page into the pool (counting a physical read on a
    miss) and returns it.  Newly allocated pages enter the pool resident
    and dirty.  The pool never holds more than ``pool_size`` pages;
    evicting a dirty page counts a physical write.
    """

    def __init__(self, page_file: PageFile, pool_size: int = 256):
        if pool_size < 4:
            raise StorageError(f"pool size {pool_size} is too small")
        self.page_file = page_file
        self.pool_size = pool_size
        self.stats = IoStatistics()
        #: Observability tracer; bound by :meth:`bind_observability`.
        self.tracer = NULL_TRACER
        self._resident: "OrderedDict[int, bool]" = OrderedDict()  # id -> dirty
        #: Cached per-site chaos hooks; None when the engine is absent or
        #: has no rules for the site (see the ``chaos`` property).
        self._chaos_read = None
        self._chaos_write = None
        self.chaos = None  # property: also selects the fix implementation

    def bind_observability(self, obs) -> None:
        """Attach a tracer and publish the I/O counters into a registry."""
        self.tracer = obs.tracer
        obs.metrics.register_collector(self._collect_metrics)
        self._rebind_fix()

    # -- instrumentation dispatch -------------------------------------------

    @property
    def chaos(self):
        """Fault-injection engine (repro.chaos), or None.

        Zero-cost-when-disabled dispatch: assigning an engine (or None)
        re-selects ``fix`` from the static implementations below and
        caches the per-site hooks, so an absent -- or installed but
        storage-idle -- engine costs the page access path nothing.
        """
        return self._chaos

    @chaos.setter
    def chaos(self, engine) -> None:
        self._chaos = engine
        if engine is None:
            self._chaos_read = None
            self._chaos_write = None
        else:
            wants = getattr(engine, "wants", None)
            self._chaos_read = (
                engine.page_read
                if wants is None or wants("page.read") else None
            )
            self._chaos_write = (
                engine.page_write
                if wants is None or wants("page.write") else None
            )
        self._rebind_fix()

    def _rebind_fix(self) -> None:
        """Select the ``fix`` implementation for the current wiring.

        The choice is latched when observability or chaos is (re)bound,
        not re-checked per access: the common configurations pay only
        for what they use, and toggling is an explicit rebind.
        """
        if self._chaos_read is not None:
            self.fix = self._fix_chaos
        elif self.tracer.enabled:
            self.fix = self._fix_traced
        else:
            self.fix = self._fix_plain

    def _collect_metrics(self, registry) -> None:
        registry.gauge("buffer.logical_reads").set(self.stats.logical_reads)
        registry.gauge("buffer.physical_reads").set(self.stats.physical_reads)
        registry.gauge("buffer.physical_writes").set(self.stats.physical_writes)
        registry.gauge("buffer.evictions").set(self.stats.evictions)
        registry.gauge("buffer.hit_ratio").set(round(self.stats.hit_ratio, 6))
        registry.gauge("buffer.resident_pages").set(len(self._resident))
        registry.gauge("buffer.pool_size").set(self.pool_size)

    # -- page access -------------------------------------------------------

    def _fix_plain(self, page_id: int, *, for_update: bool = False) -> Page:
        """``fix`` with neither tracing nor chaos: the bare LRU walk."""
        stats = self.stats
        stats.logical_reads += 1
        resident = self._resident
        if page_id in resident:
            dirty = resident.pop(page_id)
            resident[page_id] = dirty or for_update
        else:
            stats.physical_reads += 1
            self._admit(page_id, dirty=for_update)
        return self.page_file.read(page_id)

    def _fix_traced(self, page_id: int, *, for_update: bool = False) -> Page:
        """``fix`` with tracing bound (no storage chaos rules)."""
        self.stats.logical_reads += 1
        if page_id in self._resident:
            dirty = self._resident.pop(page_id)
            self._resident[page_id] = dirty or for_update
            if self.tracer.enabled:
                self.tracer.emit(BUFFER_FIX, page=page_id, hit=True,
                                 for_update=for_update)
        else:
            self.stats.physical_reads += 1
            if self.tracer.enabled:
                self.tracer.emit(BUFFER_MISS, page=page_id,
                                 for_update=for_update)
            self._admit(page_id, dirty=for_update)
        return self.page_file.read(page_id)

    def _fix_chaos(self, page_id: int, *, for_update: bool = False) -> Page:
        """``fix`` with a chaos engine holding ``page.read`` rules."""
        self.stats.logical_reads += 1
        delay = self._chaos_read(page_id)
        if delay:
            self.stats.fault_delay_ms += delay
        if page_id in self._resident:
            dirty = self._resident.pop(page_id)
            self._resident[page_id] = dirty or for_update
            if self.tracer.enabled:
                self.tracer.emit(BUFFER_FIX, page=page_id, hit=True,
                                 for_update=for_update)
        else:
            self.stats.physical_reads += 1
            if self.tracer.enabled:
                self.tracer.emit(BUFFER_MISS, page=page_id,
                                 for_update=for_update)
            self._admit(page_id, dirty=for_update)
        return self.page_file.read(page_id)

    #: ``fix`` is rebound per instance by :meth:`_rebind_fix`; the class
    #: attribute is only a safe-everywhere fallback for exotic
    #: construction paths that bypass ``__init__``.
    fix = _fix_traced

    def allocate(self) -> Page:
        """Allocate a fresh page; it enters the pool resident and dirty."""
        page = self.page_file.allocate()
        self._admit(page.page_id, dirty=True)
        return page

    def free(self, page_id: int) -> None:
        """Drop a page from pool and disk (page deallocation)."""
        self._resident.pop(page_id, None)
        self.page_file.free(page_id)

    def mark_dirty(self, page_id: int) -> None:
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self._resident[page_id] = True

    def flush(self) -> None:
        """Write back all dirty pages (checkpoint)."""
        for page_id, dirty in self._resident.items():
            if dirty:
                self.stats.physical_writes += 1
                if self._chaos_write is not None:
                    delay = self._chaos_write(page_id)
                    if delay:
                        self.stats.fault_delay_ms += delay
                self._resident[page_id] = False

    def is_resident(self, page_id: int) -> bool:
        return page_id in self._resident

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    # -- internals -----------------------------------------------------------

    def _admit(self, page_id: int, *, dirty: bool) -> None:
        while len(self._resident) >= self.pool_size:
            victim_id, victim_dirty = self._resident.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.physical_writes += 1
                if self._chaos_write is not None:
                    delay = self._chaos_write(victim_id)
                    if delay:
                        self.stats.fault_delay_ms += delay
            if self.tracer.enabled:
                self.tracer.emit(BUFFER_EVICT, page=victim_id,
                                 dirty=victim_dirty)
        self._resident[page_id] = dirty


def make_buffered_store(
    page_size: int = DEFAULT_PAGE_SIZE, pool_size: int = 256
) -> BufferManager:
    """Convenience constructor for a fresh page file + buffer manager."""
    return BufferManager(PageFile(page_size), pool_size)
