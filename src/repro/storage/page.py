"""Pages: the fixed-size storage unit underneath the B*-trees.

The document container is "a set of chained pages" (Figure 6a).  Pages here
are Python objects -- their *contents* are not serialized on every access,
but every page tracks the byte size its entries would occupy on disk, so
splits, occupancy statistics, and the buffer manager's I/O accounting
behave like a page-based disk store.  This is the honest-but-cheap disk
simulation documented in DESIGN.md.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.errors import PageOverflowError, StorageError

#: Default page size in bytes (the classic 8 KiB database page).
DEFAULT_PAGE_SIZE = 8192

#: Fixed per-entry overhead (slot pointer + lengths), in bytes.
ENTRY_OVERHEAD = 8

#: Fixed per-page overhead (header: LSN, type, chain pointers), in bytes.
PAGE_HEADER = 32


def entry_size(key: bytes, value: bytes) -> int:
    """On-disk byte footprint of one ``(key, value)`` entry."""
    return len(key) + len(value) + ENTRY_OVERHEAD


class Page:
    """A sorted slotted page of ``(key, value)`` byte entries.

    Keys are unique within a page.  The page enforces its byte capacity:
    inserts that would overflow raise :class:`PageOverflowError`, which the
    B-tree answers with a split.
    """

    __slots__ = ("page_id", "capacity", "_keys", "_values", "_used",
                 "next_page", "prev_page")

    def __init__(self, page_id: int, capacity: int = DEFAULT_PAGE_SIZE):
        if capacity <= PAGE_HEADER:
            raise StorageError(f"page capacity {capacity} below header size")
        self.page_id = page_id
        self.capacity = capacity
        self._keys: List[bytes] = []
        self._values: List[bytes] = []
        self._used = PAGE_HEADER
        #: Page ids of the container chain (leaf linking); None at the ends.
        self.next_page: Optional[int] = None
        self.prev_page: Optional[int] = None

    # -- capacity ------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    @property
    def occupancy(self) -> float:
        """Fraction of the page in use (the paper reports > 96 %)."""
        return self._used / self.capacity

    def fits(self, key: bytes, value: bytes) -> bool:
        return entry_size(key, value) <= self.free_bytes

    def __len__(self) -> int:
        return len(self._keys)

    # -- entry access ----------------------------------------------------------

    @property
    def keys(self) -> Tuple[bytes, ...]:
        return tuple(self._keys)

    def min_key(self) -> bytes:
        if not self._keys:
            raise StorageError(f"page {self.page_id} is empty")
        return self._keys[0]

    def max_key(self) -> bytes:
        if not self._keys:
            raise StorageError(f"page {self.page_id} is empty")
        return self._keys[-1]

    def get(self, key: bytes) -> Optional[bytes]:
        idx = bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return self._values[idx]
        return None

    def entries(self) -> Iterator[Tuple[bytes, bytes]]:
        return zip(tuple(self._keys), tuple(self._values))

    def entry_at(self, index: int) -> Tuple[bytes, bytes]:
        return self._keys[index], self._values[index]

    def position_of(self, key: bytes) -> int:
        """Index of the first entry with ``entry_key >= key``."""
        return bisect_left(self._keys, key)

    # -- mutation ----------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or replace an entry; raises on byte overflow."""
        idx = bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            delta = len(value) - len(self._values[idx])
            if delta > self.free_bytes:
                raise PageOverflowError(
                    f"page {self.page_id}: replacement overflows by "
                    f"{delta - self.free_bytes} bytes"
                )
            self._values[idx] = value
            self._used += delta
            return
        size = entry_size(key, value)
        if size > self.free_bytes:
            raise PageOverflowError(
                f"page {self.page_id}: entry of {size} bytes exceeds "
                f"{self.free_bytes} free bytes"
            )
        self._keys.insert(idx, key)
        self._values.insert(idx, value)
        self._used += size

    def delete(self, key: bytes) -> bool:
        """Remove an entry; returns False if the key is absent."""
        idx = bisect_left(self._keys, key)
        if idx >= len(self._keys) or self._keys[idx] != key:
            return False
        self._used -= entry_size(key, self._values[idx])
        del self._keys[idx]
        del self._values[idx]
        return True

    def split_off_upper_half(self, new_page: "Page") -> bytes:
        """Move the upper half (by bytes) into ``new_page``.

        Returns the separator key: the smallest key of the new page.
        """
        if len(self._keys) < 2:
            raise PageOverflowError(
                f"page {self.page_id} cannot split with {len(self._keys)} entries"
            )
        target = self._used // 2
        acc = PAGE_HEADER
        cut = 0
        while cut < len(self._keys) - 1:
            acc += entry_size(self._keys[cut], self._values[cut])
            if acc >= target:
                cut += 1
                break
            cut += 1
        cut = max(1, min(cut, len(self._keys) - 1))
        for key, value in zip(self._keys[cut:], self._values[cut:]):
            new_page.put(key, value)
        moved = sum(
            entry_size(k, v)
            for k, v in zip(self._keys[cut:], self._values[cut:])
        )
        del self._keys[cut:]
        del self._values[cut:]
        self._used -= moved
        return new_page.min_key()

    def absorb(self, right: "Page") -> None:
        """Merge all entries of ``right`` (must follow this page) into self."""
        if right._keys and self._keys and right.min_key() <= self.max_key():
            raise StorageError("absorb requires disjoint, ordered pages")
        for key, value in right.entries():
            self.put(key, value)
