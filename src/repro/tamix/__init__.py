"""TaMix: the paper's XML benchmark framework (Section 4)."""

from repro.tamix.bibgen import BibInfo, generate_bib
from repro.tamix.cluster import (
    CLUSTER1_MIX,
    make_database,
    run_cluster1,
    run_cluster2,
)
from repro.tamix.coordinator import TaMixConfig, TaMixCoordinator
from repro.tamix.metrics import RunResult, TypeMetrics
from repro.tamix.sweep import SweepRunner, SweepSpec
from repro.tamix.transactions import TRANSACTION_TYPES

__all__ = [
    "BibInfo",
    "CLUSTER1_MIX",
    "RunResult",
    "SweepRunner",
    "SweepSpec",
    "TRANSACTION_TYPES",
    "TaMixConfig",
    "TaMixCoordinator",
    "TypeMetrics",
    "generate_bib",
    "make_database",
    "run_cluster1",
    "run_cluster2",
]
