"""The sweep journal: durable per-cell results for ``sweep --resume``.

A journal is a JSONL file.  Line 1 is a header carrying a fingerprint of
the :class:`~repro.tamix.sweep.SweepSpec`; every further line is one
completed cell with its full :class:`~repro.tamix.metrics.RunResult`
image (:meth:`RunResult.as_journal`).  The runner appends a line the
moment a cell finishes, so a killed sweep loses at most the cell that
was in flight.

Resume is *bit-identical*: ``as_journal`` is lossless, Python floats
survive JSON round trips exactly, and the runner aggregates journaled
and fresh outcomes in matrix order -- so a resumed sweep's CSV/JSON
output equals an uninterrupted run's byte for byte.

A journal recorded under one spec refuses to resume another
(:class:`~repro.errors.BenchmarkError`); a torn final line (the process
died mid-write) is ignored and that cell re-runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import BenchmarkError
from repro.tamix.metrics import RunResult

JOURNAL_VERSION = 1


def spec_fingerprint(spec) -> Dict[str, object]:
    """The spec fields that determine every cell's inputs and seed.

    The shard axis joins the fingerprint only when it is actually swept
    (anything but the default ``(1,)``), so journals recorded before the
    axis existed keep resuming unchanged.  The shard *transport* stays
    out: simulated and process transports produce identical results for
    the same seed, so it never alters a cell's outcome.
    """
    fingerprint = {
        "protocols": list(spec.protocols),
        "lock_depths": list(spec.lock_depths),
        "isolations": list(spec.isolations),
        "runs_per_cell": spec.runs_per_cell,
        "scale": spec.scale,
        "run_duration_ms": spec.run_duration_ms,
        "base_seed": spec.base_seed,
    }
    shards = tuple(getattr(spec, "shards", (1,)) or (1,))
    if shards != (1,):
        fingerprint["shards"] = list(shards)
    return fingerprint


class SweepJournal:
    """Append-only record of completed sweep cells."""

    def __init__(self, path: Union[str, Path], spec):
        self.path = Path(path)
        self.spec_dict = spec_fingerprint(spec)
        self._handle = None

    # -- reading ------------------------------------------------------------

    def load(self) -> Dict[object, RunResult]:
        """Completed cells from an existing journal file ({} if absent).

        Keys are :class:`~repro.tamix.sweep.SweepCell` instances.  Raises
        :class:`BenchmarkError` when the journal belongs to a different
        spec.  A torn trailing line is skipped silently.
        """
        from repro.tamix.sweep import SweepCell

        if not self.path.exists():
            return {}
        done: Dict[object, RunResult] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise BenchmarkError(
                f"sweep journal {self.path} has a corrupt header"
            ) from None
        if header.get("kind") != "header":
            raise BenchmarkError(f"{self.path} is not a sweep journal")
        if header.get("version") != JOURNAL_VERSION:
            raise BenchmarkError(
                f"sweep journal {self.path} has version "
                f"{header.get('version')}, expected {JOURNAL_VERSION}"
            )
        if header.get("spec") != self.spec_dict:
            raise BenchmarkError(
                f"sweep journal {self.path} was recorded for a different "
                f"sweep spec; refusing to resume"
            )
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: the process died mid-write
            if record.get("kind") != "cell":
                continue
            cell = SweepCell(**record["cell"])
            done[cell] = RunResult.from_journal(record["result"])
        return done

    # -- writing ------------------------------------------------------------

    def open_for_append(self, *, fresh: bool) -> None:
        """Start writing; ``fresh`` truncates and rewrites the header."""
        if fresh or not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
            self._write({
                "kind": "header",
                "version": JOURNAL_VERSION,
                "spec": self.spec_dict,
            })
        else:
            self._handle = open(self.path, "a", encoding="utf-8")

    def record(self, cell, result: RunResult) -> None:
        """Durably append one completed cell.

        ``shards`` is written only for sharded cells, so unsharded
        journals stay byte-identical to the pre-shard format (and load
        back with the :class:`SweepCell` default of 1).
        """
        image = {
            "protocol": cell.protocol,
            "lock_depth": cell.lock_depth,
            "isolation": cell.isolation,
            "run": cell.run,
        }
        if getattr(cell, "shards", 1) != 1:
            image["shards"] = cell.shards
        self._write({
            "kind": "cell",
            "cell": image,
            "result": result.as_journal(),
        })

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
