"""Reporting helpers: paper-style ASCII charts for the figure benchmarks.

The evaluation figures of the paper are line charts over lock depth and
bar charts per protocol.  These renderers produce the same shapes as
monospace text, so the benchmark results files double as figures.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

_GLYPHS = "*o+x#@%&"


def line_chart(
    series: Mapping[str, Sequence[float]],
    *,
    x_labels: Sequence[object],
    title: str = "",
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render several aligned series as an ASCII line chart.

    ``series`` maps a name to one value per x position (the lock-depth
    sweeps of Figures 7, 9, 10).
    """
    names = list(series)
    if not names:
        return title
    columns = len(x_labels)
    peak = max((max(values) for values in series.values()), default=0.0)
    peak = max(peak, 1.0)
    grid = [[" "] * (columns * 4) for _row in range(height)]
    for index, name in enumerate(names):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, value in enumerate(series[name]):
            row = height - 1 - int(round((value / peak) * (height - 1)))
            grid[row][x * 4 + 1] = glyph

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        level = peak * (height - 1 - row_index) / (height - 1)
        lines.append(f"{level:8.0f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * (columns * 4))
    lines.append(
        " " * 10 + "".join(f"{str(label):<4}" for label in x_labels)
        + ("  " + y_label if y_label else "")
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(names)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    *,
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Render a name -> value mapping as horizontal ASCII bars
    (the Figure 8/11 per-protocol comparisons)."""
    if not values:
        return title
    peak = max(max(values.values()), 1e-9)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, int(round((value / peak) * width))) if value else ""
        lines.append(f"  {name:<10} {value:10.2f} {unit:<3} |{bar}")
    return "\n".join(lines)


def heatmap(
    grid: Mapping[str, Mapping[object, float]],
    *,
    columns: Sequence[object],
    title: str = "",
) -> str:
    """Render a rows x columns intensity grid with shade glyphs.

    ``grid`` maps a row name (protocol) to ``{column: value}`` (e.g. lock
    depth -> blocking time); shading is normalized to the grid's peak, so
    the hottest cell is always the darkest glyph.  Used for the sweep
    report's contention heatmaps.
    """
    shades = " .:-=+*#%@"
    peak = max(
        (value for row in grid.values() for value in row.values()),
        default=0.0,
    )
    lines = [title] if title else []
    header = " " * 12 + "".join(f"{str(column):>6}" for column in columns)
    lines.append(header)
    for name, row in grid.items():
        cells = []
        for column in columns:
            value = row.get(column)
            if value is None:
                cells.append(f"{'':>6}")
                continue
            level = 0 if peak <= 0 else int(
                round((value / peak) * (len(shades) - 1))
            )
            cells.append(f"{shades[level] * 3:>6}")
        lines.append(f"  {str(name):<10}" + "".join(cells))
    lines.append(
        f"  scale: ' ' = 0 .. '@' = {peak:.2f} (grid peak)"
    )
    return "\n".join(lines)


def mode_profile_table(
    profiles: Mapping[str, Mapping[str, int]],
    *,
    title: str = "",
    top: Optional[int] = None,
) -> str:
    """Tabulate per-protocol lock-mode usage side by side."""
    lines = [title] if title else []
    for protocol, profile in profiles.items():
        entries = sorted(profile.items(), key=lambda kv: -kv[1])
        if top is not None:
            entries = entries[:top]
        rendered = "  ".join(f"{mode}={count}" for mode, count in entries)
        lines.append(f"  {protocol:<10} {rendered}")
    return "\n".join(lines)
