"""TaMix performance metrics (Section 4.1).

"We could specifically realize the following performance metrics for each
experiment: number of committed and aborted transactions for a
pre-specified lock depth and isolation level; average, maximal, and
minimal duration of a transaction of a given type; number and type of
deadlocks for a lock protocol."
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: The latency SLO percentiles reported per transaction type.
SLO_PERCENTILES = (("p50_ms", 50.0), ("p99_ms", 99.0), ("p999_ms", 99.9))


def nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """The q-th percentile by the nearest-rank method (deterministic).

    ``sorted_values`` must be non-empty and ascending.  Nearest rank --
    ``ceil(q/100 * n)`` -- is exact-arithmetic on the observed samples
    (no interpolation), so seeded runs report byte-identical SLOs.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile {q} out of (0, 100]")
    rank = -(-q * len(sorted_values) // 100)  # ceil without floats
    return sorted_values[int(rank) - 1]


def latency_slo(durations: Sequence[float]) -> Dict[str, float]:
    """SLO summary of a latency sample: count + p50/p99/p999 (ms).

    Empty samples yield a count of 0 and no percentile keys, so reports
    never print percentiles fabricated from nothing.
    """
    slo: Dict[str, float] = {"count": len(durations)}
    if durations:
        ordered = sorted(durations)
        for key, q in SLO_PERCENTILES:
            slo[key] = nearest_rank(ordered, q)
    return slo


def histogram_percentile(
    boundaries: Sequence[float], bucket_counts: Sequence[int], q: float
) -> Optional[float]:
    """Nearest-rank percentile from fixed histogram buckets.

    ``boundaries`` are the finite upper bounds, ``bucket_counts`` has one
    extra overflow entry (the :class:`~repro.obs.metrics.Histogram`
    layout).  Returns the upper boundary of the bucket containing the
    nearest-rank observation -- a conservative (upper-bound) estimate,
    ``inf`` when the rank lands in the overflow bucket, ``None`` for an
    empty histogram.
    """
    if len(bucket_counts) != len(boundaries) + 1:
        raise ValueError("bucket_counts must have one overflow entry")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile {q} out of (0, 100]")
    total = sum(bucket_counts)
    if total == 0:
        return None
    rank = -(-q * total // 100)  # ceil without floats
    running = 0
    for boundary, count in zip(boundaries, bucket_counts):
        running += count
        if running >= rank:
            return float(boundary)
    return float("inf")


@dataclass
class TypeMetrics:
    """Counters for one transaction type."""

    committed: int = 0
    aborted: int = 0
    deadlock_aborts: int = 0
    timeout_aborts: int = 0
    storage_aborts: int = 0
    shard_unavailable_aborts: int = 0
    durations: List[float] = field(default_factory=list)

    def record_commit(self, duration_ms: float) -> None:
        self.committed += 1
        self.durations.append(duration_ms)

    def record_abort(self, kind: str = "deadlock") -> None:
        self.aborted += 1
        if kind == "deadlock":
            self.deadlock_aborts += 1
        elif kind == "storage":
            self.storage_aborts += 1
        elif kind == "shard-unavailable":
            self.shard_unavailable_aborts += 1
        else:
            self.timeout_aborts += 1

    def as_journal(self) -> Dict[str, object]:
        journal = {
            "committed": self.committed,
            "aborted": self.aborted,
            "deadlock_aborts": self.deadlock_aborts,
            "timeout_aborts": self.timeout_aborts,
            "storage_aborts": self.storage_aborts,
            "durations": list(self.durations),
        }
        # Only sharded runs can see this kind; journals of single-node
        # runs stay byte-identical to the pre-shard golden files.
        if self.shard_unavailable_aborts:
            journal["shard_unavailable_aborts"] = self.shard_unavailable_aborts
        return journal

    @classmethod
    def from_journal(cls, data: Dict[str, object]) -> "TypeMetrics":
        return cls(
            committed=int(data["committed"]),
            aborted=int(data["aborted"]),
            deadlock_aborts=int(data["deadlock_aborts"]),
            timeout_aborts=int(data["timeout_aborts"]),
            storage_aborts=int(data.get("storage_aborts", 0)),
            shard_unavailable_aborts=int(
                data.get("shard_unavailable_aborts", 0)
            ),
            durations=[float(d) for d in data["durations"]],
        )

    @property
    def avg_duration(self) -> Optional[float]:
        if not self.durations:
            return None
        return sum(self.durations) / len(self.durations)

    @property
    def min_duration(self) -> Optional[float]:
        return min(self.durations) if self.durations else None

    @property
    def max_duration(self) -> Optional[float]:
        return max(self.durations) if self.durations else None

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank latency percentile over the recorded durations."""
        if not self.durations:
            return None
        return nearest_rank(sorted(self.durations), q)

    @property
    def latency_slo(self) -> Dict[str, float]:
        """count + p50/p99/p999 commit latency, ms (see :func:`latency_slo`)."""
        return latency_slo(self.durations)


@dataclass
class RunResult:
    """The outcome of one TaMix benchmark run."""

    protocol: str
    lock_depth: int
    isolation: str
    run_duration_ms: float
    by_type: Dict[str, TypeMetrics] = field(
        default_factory=lambda: defaultdict(TypeMetrics)
    )
    deadlocks: int = 0
    deadlocks_by_kind: Dict[str, int] = field(default_factory=dict)
    lock_stats: Dict[str, int] = field(default_factory=dict)
    #: Aggregate lock-wait durations (count/total/mean/max, simulated ms).
    wait_stats: Dict[str, float] = field(default_factory=dict)
    #: Fixed-bucket wait-time histogram (see repro.obs.metrics.Histogram).
    wait_histogram: Dict[str, object] = field(default_factory=dict)
    #: Transaction restarts performed by the retry policy (0 without one).
    restarts: int = 0
    #: Work items shed by admission control (0 without a controller).
    sheds: int = 0

    # -- the paper's headline numbers ---------------------------------------

    @property
    def committed(self) -> int:
        """Total committed transactions (the figures' throughput axis)."""
        return sum(m.committed for m in self.by_type.values())

    @property
    def aborted(self) -> int:
        return sum(m.aborted for m in self.by_type.values())

    @property
    def aborted_by_kind(self) -> Dict[str, int]:
        """Abort counts split by cause (deadlock/timeout/storage fault/
        unavailable shard)."""
        return {
            "deadlock": sum(m.deadlock_aborts for m in self.by_type.values()),
            "timeout": sum(m.timeout_aborts for m in self.by_type.values()),
            "storage": sum(m.storage_aborts for m in self.by_type.values()),
            "shard-unavailable": sum(
                m.shard_unavailable_aborts for m in self.by_type.values()
            ),
        }

    @property
    def latency_slo(self) -> Dict[str, Dict[str, float]]:
        """Per-transaction-type latency SLO percentiles, plus ``_overall``.

        Keys are transaction types (sorted), values ``{"count", "p50_ms",
        "p99_ms", "p999_ms"}``; the ``_overall`` entry pools every
        committed transaction's duration.  This is what the lock server
        reports per SLO window and what the sweep reports tabulate.
        """
        slo = {
            name: metrics.latency_slo
            for name, metrics in sorted(self.by_type.items())
        }
        pooled: List[float] = []
        for metrics in self.by_type.values():
            pooled.extend(metrics.durations)
        slo["_overall"] = latency_slo(pooled)
        return slo

    def committed_of(self, txn_type: str) -> int:
        return self.by_type[txn_type].committed

    def aborted_of(self, txn_type: str) -> int:
        return self.by_type[txn_type].aborted

    def normalized_throughput(self, window_ms: float = 300_000.0) -> float:
        """Committed transactions per paper-sized (5-minute) window."""
        if self.run_duration_ms <= 0:
            return 0.0
        return self.committed * window_ms / self.run_duration_ms

    # -- reporting ---------------------------------------------------------------

    def row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "lock_depth": self.lock_depth,
            "isolation": self.isolation,
            "committed": self.committed,
            "aborted": self.aborted,
            "deadlocks": self.deadlocks,
        }

    def as_journal(self) -> Dict[str, object]:
        """Lossless JSON-safe image of this result (sweep journal rows).

        Floats survive JSON round trips exactly (repr-based encoding), so
        a result rebuilt by :meth:`from_journal` aggregates to the same
        bytes as the original -- the basis of ``repro sweep --resume``.
        """
        return {
            "protocol": self.protocol,
            "lock_depth": self.lock_depth,
            "isolation": self.isolation,
            "run_duration_ms": self.run_duration_ms,
            "by_type": {
                name: metrics.as_journal()
                for name, metrics in sorted(self.by_type.items())
            },
            "deadlocks": self.deadlocks,
            "deadlocks_by_kind": dict(self.deadlocks_by_kind),
            "lock_stats": dict(self.lock_stats),
            "wait_stats": dict(self.wait_stats),
            "wait_histogram": dict(self.wait_histogram),
            "restarts": self.restarts,
            "sheds": self.sheds,
        }

    @classmethod
    def from_journal(cls, data: Dict[str, object]) -> "RunResult":
        result = cls(
            protocol=str(data["protocol"]),
            lock_depth=int(data["lock_depth"]),
            isolation=str(data["isolation"]),
            run_duration_ms=float(data["run_duration_ms"]),
            deadlocks=int(data["deadlocks"]),
            deadlocks_by_kind=dict(data["deadlocks_by_kind"]),
            lock_stats=dict(data["lock_stats"]),
            wait_stats=dict(data["wait_stats"]),
            wait_histogram=dict(data["wait_histogram"]),
            restarts=int(data.get("restarts", 0)),
            sheds=int(data.get("sheds", 0)),
        )
        for name, metrics in data["by_type"].items():
            result.by_type[name] = TypeMetrics.from_journal(metrics)
        return result

    def summary(self) -> str:
        per_type = "  ".join(
            f"{name}={metrics.committed}/{metrics.aborted}"
            for name, metrics in sorted(self.by_type.items())
        )
        return (
            f"{self.protocol:<9} depth={self.lock_depth} "
            f"{self.isolation:<11} committed={self.committed:<5} "
            f"aborted={self.aborted:<5} deadlocks={self.deadlocks:<5} "
            f"[{per_type}]"
        )
