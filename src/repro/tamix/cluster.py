"""The paper's cluster workloads: CLUSTER1 and CLUSTER2 (Section 4.3).

* **CLUSTER1**: a continuous 72-transaction mix (per client: 9 TAqueryBook,
  5 TAchapter, 2 TArenameTopic, 8 TAlendAndReturn; 3 clients), varied over
  isolation level and lock depth -- the workload behind Figures 7-10.
* **CLUSTER2**: a single TAdelBook in single-user mode under isolation
  level repeatable; the metric is the transaction's execution time, which
  exposes the *-2PL group's pre-delete ID scans (Figure 11).

``run_cluster1``/``run_cluster2`` build a fresh bib document per call so
runs never contaminate each other.  Lock depth is ignored by the three
protocols without depth support (the paper sweeps only depth-aware
protocols over depth).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.database import Database
from repro.errors import DeadlockAbort
from repro.sched.simulator import Simulator
from repro.tamix.bibgen import BibInfo, generate_bib
from repro.tamix.coordinator import TaMixConfig, TaMixCoordinator
from repro.tamix.metrics import RunResult
from repro.tamix.transactions import ta_del_book

#: CLUSTER1's per-client transaction mix.
CLUSTER1_MIX = {
    "TAqueryBook": 9,
    "TAchapter": 5,
    "TArenameTopic": 2,
    "TAlendAndReturn": 8,
}


def make_database(
    protocol: str,
    lock_depth: int,
    isolation: str,
    *,
    scale: float = 0.1,
    seed: int = 2006,
    info: Optional[BibInfo] = None,
    observability=None,
    enable_wal: bool = False,
    escalation_threshold: Optional[int] = None,
) -> tuple:
    """A database plus bib document for one benchmark run."""
    if info is None:
        info = generate_bib(scale=scale, seed=seed)
    database = Database(
        protocol=protocol,
        lock_depth=lock_depth,
        isolation=isolation,
        document=info.document,
        observability=observability,
        enable_wal=enable_wal,
        escalation_threshold=escalation_threshold,
    )
    return database, info


def run_cluster1(
    protocol: str,
    *,
    lock_depth: int = 4,
    isolation: str = "repeatable",
    scale: float = 0.1,
    run_duration_ms: float = 60_000.0,
    seed: int = 42,
    info: Optional[BibInfo] = None,
    observability=None,
    enable_wal: bool = False,
    escalation_threshold: Optional[int] = None,
) -> RunResult:
    """One CLUSTER1 run; returns the paper's metrics.

    Pass an :class:`~repro.obs.Observability` (or ``True``) to record a
    deterministic, replayable event trace alongside the metrics; the
    trace's aggregated counters match the returned
    :class:`~repro.tamix.metrics.RunResult` exactly.

    ``escalation_threshold`` enables the lock manager's node-to-subtree
    escalation policy (``None``, the default, keeps it off so runs stay
    byte-identical with earlier versions).
    """
    database, info = make_database(
        protocol, lock_depth, isolation, scale=scale, seed=2006, info=info,
        observability=observability, enable_wal=enable_wal,
        escalation_threshold=escalation_threshold,
    )
    config = TaMixConfig(
        protocol=protocol,
        lock_depth=lock_depth,
        isolation=isolation,
        run_duration_ms=run_duration_ms,
        mix=dict(CLUSTER1_MIX),
        seed=seed,
    )
    return TaMixCoordinator(database, info, config).run()


def run_cluster2(
    protocol: str,
    *,
    lock_depth: int = 4,
    scale: float = 0.1,
    seed: int = 7,
    info: Optional[BibInfo] = None,
) -> float:
    """One CLUSTER2 run: execution time (ms) of a single TAdelBook.

    Single-user mode, isolation level repeatable -- "transaction duration
    is very expressive and characterizes the amount of locking overhead
    necessary" (Section 4.3).
    """
    database, info = make_database(
        protocol, lock_depth, "repeatable", scale=scale, seed=2006, info=info
    )
    config = TaMixConfig(
        protocol=protocol,
        lock_depth=lock_depth,
        isolation="repeatable",
        wait_after_operation_ms=0.0,  # measure locking overhead, not think time
        mix={},
        seed=seed,
    )
    sim = Simulator()
    database.set_clock(lambda: sim.now)
    rng = random.Random(seed)
    timing = {}

    def single_delete():
        txn = database.begin("TAdelBook", "repeatable")
        started = sim.now
        try:
            yield from ta_del_book(database.nodes, txn, rng, info, config)
        except DeadlockAbort:  # impossible in single-user mode
            database.abort(txn)
            raise
        database.commit(txn)
        timing["elapsed"] = sim.now - started

    sim.spawn(single_delete())
    sim.run()
    return timing["elapsed"]
