"""TaMix clients and coordinator (Section 4.3).

The coordinator keeps a fixed population of transaction slots active for
the whole run -- CLUSTER1's 3 clients x 24 transactions = 72.  Each slot
waits a random initial delay (0..5000 ms), then loops: begin a
transaction, run its program, commit, wait ``waitAfterCommit``, restart.
A deadlock victim is rolled back, counted as aborted, and the slot
restarts a fresh transaction of the same type after a backoff -- keeping
the configured number of transactions active, as the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.chaos.retry import ADMIT, QUEUE, AdmissionPolicy, RetryPolicy
from repro.database import Database
from repro.errors import BenchmarkError, TransactionAborted, TransientError
from repro.obs import ADMISSION_DECISION, RUN_INFO, TXN_RETRY
from repro.sched.simulator import Delay, Simulator
from repro.tamix.bibgen import BibInfo
from repro.tamix.metrics import RunResult
from repro.tamix.transactions import TRANSACTION_TYPES


@dataclass
class TaMixConfig:
    """Run parameters (paper values as defaults, duration configurable)."""

    protocol: str = "taDOM3+"
    lock_depth: int = 4
    isolation: str = "repeatable"
    #: Simulated run duration; the paper uses 5 minutes (300000 ms).
    run_duration_ms: float = 60_000.0
    wait_after_commit_ms: float = 2_500.0
    wait_after_operation_ms: float = 100.0
    initial_wait_max_ms: float = 5_000.0
    restart_backoff_max_ms: float = 2_500.0
    clients: int = 3
    #: Per-client transaction mix (CLUSTER1 by default).
    mix: Dict[str, int] = field(
        default_factory=lambda: {
            "TAqueryBook": 9,
            "TAchapter": 5,
            "TArenameTopic": 2,
            "TAlendAndReturn": 8,
        }
    )
    seed: int = 42
    #: Restart policy for aborted work items.  ``None`` (the default)
    #: keeps the legacy behaviour -- uniform random backoff, unlimited
    #: restarts -- and draws the exact same RNG sequence as before this
    #: field existed, so seeded legacy runs stay bit-identical.
    retry: Optional[RetryPolicy] = None
    #: Admission control under restart pressure; ``None`` disables it.
    admission: Optional[AdmissionPolicy] = None

    @property
    def wait_after_operation(self) -> float:
        return self.wait_after_operation_ms

    @property
    def active_transactions(self) -> int:
        return self.clients * sum(self.mix.values())


class TaMixCoordinator:
    """Runs one benchmark configuration against one database."""

    def __init__(self, database: Database, info: BibInfo, config: TaMixConfig):
        if database.document is not info.document:
            raise BenchmarkError("database and BibInfo use different documents")
        self.database = database
        self.info = info
        self.config = config
        self._admission = None
        self.result = RunResult(
            protocol=config.protocol,
            lock_depth=config.lock_depth,
            isolation=config.isolation,
            run_duration_ms=config.run_duration_ms,
        )

    def run(self) -> RunResult:
        sim = Simulator()
        self.database.set_clock(lambda: sim.now)
        self._emit_run_info()
        self._admission = (
            self.config.admission.controller()
            if self.config.admission is not None else None
        )
        rng = random.Random(self.config.seed)
        slot = 0
        for _client in range(self.config.clients):
            for txn_type, count in self.config.mix.items():
                if txn_type not in TRANSACTION_TYPES:
                    raise BenchmarkError(f"unknown transaction type {txn_type}")
                for _i in range(count):
                    slot += 1
                    slot_rng = random.Random(rng.randrange(2 ** 62))
                    sim.spawn(
                        self._slot(sim, txn_type, slot_rng),
                        name=f"{txn_type}-{slot}",
                    )
        sim.run(until=self.config.run_duration_ms)
        self._collect()
        return self.result

    # -- internals -----------------------------------------------------------

    def _emit_run_info(self) -> None:
        """Trace the run manifest so a recorded history is self-describing
        (``repro verify`` reads protocol/depth/isolation/seed from it)."""
        obs = self.database.obs
        if not (obs.access_events and obs.tracer.enabled):
            return
        obs.tracer.emit(
            RUN_INFO,
            protocol=self.config.protocol,
            lock_depth=self.config.lock_depth,
            isolation=self.config.isolation,
            seed=self.config.seed,
            run_duration_ms=self.config.run_duration_ms,
        )

    def _slot(self, sim: Simulator, txn_type: str, rng: random.Random):
        """One continuously active transaction slot.

        Without a retry policy this is the paper's loop verbatim (abort
        -> uniform backoff -> fresh transaction, unlimited restarts).
        With ``config.retry`` set, restarts use bounded exponential
        backoff with a per-work-item budget, and ``config.admission``
        gates *new* work items (queue, then shed) while many slots are
        restarting.
        """
        cfg = self.config
        program = TRANSACTION_TYPES[txn_type]
        retry = cfg.retry
        admission = self._admission
        tracer = self.database.tracer
        yield Delay(rng.uniform(0.0, cfg.initial_wait_max_ms))
        restarts = 0      # restarts of the current work item
        queue_waits = 0   # admission queue waits of the current arrival
        while sim.now < cfg.run_duration_ms:
            if admission is not None and restarts == 0:
                decision = admission.admit(queue_waits)
                if decision is not ADMIT and tracer.enabled:
                    tracer.emit(
                        ADMISSION_DECISION, decision=decision,
                        pressure=admission.pressure, waits=queue_waits,
                    )
                if decision is QUEUE:
                    queue_waits += 1
                    yield Delay(admission.policy.queue_backoff_ms)
                    continue
                if decision is not ADMIT:  # SHED
                    self.result.sheds += 1
                    queue_waits = 0
                    yield Delay(cfg.wait_after_commit_ms)
                    continue
                queue_waits = 0
            txn = self.database.begin(txn_type, cfg.isolation)
            started = sim.now
            failure = None
            committing = False
            try:
                yield from program(
                    self.database.nodes, txn, rng, self.info, cfg
                )
                committing = True
                self.database.commit(txn)
            except (TransactionAborted, TransientError) as exc:
                failure = exc
            if failure is not None:
                # Deadlock victim, lock-wait timeout, injected transient
                # storage fault, or an unavailable shard at commit: roll
                # back, count the abort, and restart a fresh transaction
                # of the same type after a backoff (keeping the
                # population active).  A commit-time failure arrives
                # already rolled back (the router aborted the surviving
                # legs before re-raising), so only program failures
                # still need the abort here.
                kind = getattr(failure, "reason", None) or "storage"
                if not committing:
                    self.database.abort(txn, reason=kind)
                self.result.by_type[txn_type].record_abort(kind)
                if retry is None:
                    yield Delay(rng.uniform(0.0, cfg.restart_backoff_max_ms))
                    continue
                if restarts == 0 and admission is not None:
                    admission.enter_restart()
                if not retry.allows_restart(restarts):
                    # Budget exhausted: give up on this work item and
                    # move on to a fresh one after the commit wait.
                    self.database.obs.metrics.counter(
                        "txn.restart_budget_exhausted").inc()
                    if admission is not None:
                        admission.leave_restart()
                    restarts = 0
                    yield Delay(cfg.wait_after_commit_ms)
                    continue
                restarts += 1
                self.result.restarts += 1
                backoff = retry.backoff_ms(restarts, rng)
                if tracer.enabled:
                    tracer.emit(
                        TXN_RETRY, txn=txn.label, reason=kind,
                        restart=restarts, backoff_ms=round(backoff, 6),
                    )
                yield Delay(backoff)
                continue
            self.result.by_type[txn_type].record_commit(sim.now - started)
            if restarts > 0:
                restarts = 0
                if admission is not None:
                    admission.leave_restart()
            yield Delay(cfg.wait_after_commit_ms)

    def _collect(self) -> None:
        locks = self.database.locks
        detector = locks.detector
        self.result.deadlocks = detector.count()
        self.result.deadlocks_by_kind = detector.counts_by_kind()
        self.result.lock_stats = locks.lock_statistics()
        self.result.wait_stats = locks.wait_statistics()
        self.result.wait_histogram = locks.wait_histogram.as_dict()
        # Publish the run's headline numbers into the metrics registry so
        # one snapshot carries benchmark + component metrics together.
        metrics = self.database.obs.metrics
        metrics.gauge("tamix.committed").set(self.result.committed)
        metrics.gauge("tamix.aborted").set(self.result.aborted)
        metrics.gauge("tamix.deadlocks").set(self.result.deadlocks)
        for kind, count in self.result.deadlocks_by_kind.items():
            metrics.gauge(f"tamix.deadlocks.{kind}").set(count)
        if self.config.retry is not None:
            metrics.gauge("tamix.restarts").set(self.result.restarts)
        if self._admission is not None:
            metrics.gauge("tamix.sheds").set(self._admission.sheds)
            metrics.gauge("tamix.queue_waits").set(self._admission.queue_waits)
