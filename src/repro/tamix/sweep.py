"""The automated measurement environment (Section 4.1).

"Therefore, we had to design tailored benchmarks together with an
automated measurement environment."  This module is that environment: it
expands an experiment matrix (protocols x lock depths x isolation levels
x repetitions), runs every cell, aggregates repetitions, and persists the
results as CSV/JSON so figures can be regenerated without re-running.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.registry import get_protocol
from repro.errors import BenchmarkError
from repro.tamix.cluster import run_cluster1
from repro.tamix.metrics import RunResult


@dataclass(frozen=True)
class SweepCell:
    """One point of the experiment matrix."""

    protocol: str
    lock_depth: int
    isolation: str
    run: int = 0


@dataclass
class CellResult:
    """Aggregated repetitions of one cell."""

    cell: SweepCell
    committed: float = 0.0
    aborted: float = 0.0
    deadlocks: float = 0.0
    runs: int = 0
    by_type: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "protocol": self.cell.protocol,
            "lock_depth": self.cell.lock_depth,
            "isolation": self.cell.isolation,
            "runs": self.runs,
            "committed": round(self.committed, 2),
            "aborted": round(self.aborted, 2),
            "deadlocks": round(self.deadlocks, 2),
        }
        for txn_type, value in sorted(self.by_type.items()):
            row[txn_type] = round(value, 2)
        return row


@dataclass
class SweepSpec:
    """An experiment matrix, in the spirit of the paper's test plans.

    The paper's CLUSTER1 plan: "isolation levels: none, uncommitted,
    committed, repeatable; lock depths where applicable: 0 to 7; number
    of runs per isolation level and lock depth: 4; run duration: 5 mins".
    """

    protocols: Sequence[str]
    lock_depths: Sequence[int] = (0, 1, 2, 3, 4, 5, 6, 7)
    isolations: Sequence[str] = ("repeatable",)
    runs_per_cell: int = 1
    scale: float = 0.1
    run_duration_ms: float = 60_000.0
    base_seed: int = 42

    def cells(self) -> Iterable[SweepCell]:
        if self.runs_per_cell < 1:
            raise BenchmarkError("runs_per_cell must be >= 1")
        for protocol in self.protocols:
            depth_aware = get_protocol(protocol).supports_lock_depth
            depths = self.lock_depths if depth_aware else (self.lock_depths[0],)
            for depth in depths:
                for isolation in self.isolations:
                    for run in range(self.runs_per_cell):
                        yield SweepCell(protocol, depth, isolation, run)


class SweepRunner:
    """Runs a :class:`SweepSpec` and aggregates per-cell repetitions."""

    def __init__(self, spec: SweepSpec):
        self.spec = spec
        self.results: Dict[Tuple[str, int, str], CellResult] = {}

    def run(self, *, progress=None) -> List[CellResult]:
        for cell in self.spec.cells():
            outcome = run_cluster1(
                cell.protocol,
                lock_depth=cell.lock_depth,
                isolation=cell.isolation,
                scale=self.spec.scale,
                run_duration_ms=self.spec.run_duration_ms,
                seed=self.spec.base_seed + cell.run,
            )
            self._aggregate(cell, outcome)
            if progress is not None:
                progress(cell, outcome)
        return self.sorted_results()

    def sorted_results(self) -> List[CellResult]:
        return [
            self.results[key]
            for key in sorted(self.results, key=lambda k: (k[0], k[2], k[1]))
        ]

    # -- persistence ---------------------------------------------------------

    def to_csv(self) -> str:
        results = self.sorted_results()
        if not results:
            return ""
        fieldnames = list(results[0].as_row())
        for result in results:
            for key in result.as_row():
                if key not in fieldnames:
                    fieldnames.append(key)
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=fieldnames, restval=0)
        writer.writeheader()
        for result in results:
            writer.writerow(result.as_row())
        return out.getvalue()

    def to_json(self) -> str:
        return json.dumps(
            [result.as_row() for result in self.sorted_results()], indent=2
        )

    def series(self, metric: str = "committed",
               isolation: Optional[str] = None) -> Dict[str, List[float]]:
        """Per-protocol series over lock depth (line-chart ready)."""
        isolation = isolation or self.spec.isolations[0]
        series: Dict[str, List[float]] = {}
        for result in self.sorted_results():
            if result.cell.isolation != isolation:
                continue
            value = getattr(result, metric)
            series.setdefault(result.cell.protocol, []).append(value)
        return series

    # -- internals -----------------------------------------------------------------

    def _aggregate(self, cell: SweepCell, outcome: RunResult) -> None:
        key = (cell.protocol, cell.lock_depth, cell.isolation)
        slot = self.results.get(key)
        if slot is None:
            slot = CellResult(SweepCell(*key))
            self.results[key] = slot
        n = slot.runs
        slot.committed = (slot.committed * n + outcome.committed) / (n + 1)
        slot.aborted = (slot.aborted * n + outcome.aborted) / (n + 1)
        slot.deadlocks = (slot.deadlocks * n + outcome.deadlocks) / (n + 1)
        for txn_type, metrics in outcome.by_type.items():
            previous = slot.by_type.get(txn_type, 0.0)
            slot.by_type[txn_type] = (previous * n + metrics.committed) / (n + 1)
        slot.runs = n + 1
