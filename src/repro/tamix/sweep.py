"""The automated measurement environment (Section 4.1).

"Therefore, we had to design tailored benchmarks together with an
automated measurement environment."  This module is that environment: it
expands an experiment matrix (protocols x lock depths x isolation levels
x repetitions), runs every cell, aggregates repetitions, and persists the
results as CSV/JSON so figures can be regenerated without re-running.

Cells are independent (every cell builds its own document and seeds its
own RNG streams), so :class:`SweepRunner` can fan them out across a
``ProcessPoolExecutor`` (``workers=N``).  Per-cell seeds are derived the
same way in both paths and results are aggregated in matrix order, so a
parallel sweep is byte-identical to a serial one.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.registry import get_protocol
from repro.errors import BenchmarkError
from repro.obs import WAIT_TIME_BUCKETS_MS
from repro.tamix.cluster import run_cluster1
from repro.tamix.metrics import RunResult, latency_slo

#: Canonical wait-histogram column order: the fixed bucket boundaries of
#: :data:`repro.obs.metrics.WAIT_TIME_BUCKETS_MS` plus the overflow
#: bucket.  Serialization goes through this list so rows from different
#: protocols (or cells that never waited) always agree on column order.
HISTOGRAM_BUCKET_ORDER: Tuple[str, ...] = tuple(
    f"le_{boundary:g}" for boundary in WAIT_TIME_BUCKETS_MS
) + ("le_inf",)


def canonical_histogram(buckets: Dict[str, int]) -> Dict[str, int]:
    """Bucket counts in canonical order, zero-filled for absent buckets."""
    return {key: int(buckets.get(key, 0)) for key in HISTOGRAM_BUCKET_ORDER}


@dataclass(frozen=True)
class SweepCell:
    """One point of the experiment matrix."""

    protocol: str
    lock_depth: int
    isolation: str
    run: int = 0
    #: Shard count (1 = the classic single-node run; >1 routes the cell
    #: through :func:`repro.shard.runner.run_sharded_cluster1`).
    shards: int = 1


@dataclass
class CellResult:
    """Aggregated repetitions of one cell."""

    cell: SweepCell
    committed: float = 0.0
    aborted: float = 0.0
    deadlocks: float = 0.0
    runs: int = 0
    by_type: Dict[str, float] = field(default_factory=dict)
    #: Abort/deadlock-kind breakdown, summed over repetitions.
    aborted_by_kind: Dict[str, float] = field(default_factory=dict)
    deadlocks_by_kind: Dict[str, float] = field(default_factory=dict)
    #: Lock-wait accounting: summed counts, max of maxima, and the
    #: fixed-bucket wait-time histogram summed bucket-wise.
    lock_waits: float = 0.0
    wait_mean_ms: float = 0.0
    wait_max_ms: float = 0.0
    #: Total blocking time summed over repetitions (the histogram's
    #: ``total``) -- what the trace analyzer reconstructs per cell.
    wait_total_ms: float = 0.0
    wait_histogram: Dict[str, int] = field(default_factory=dict)
    #: Commit latencies pooled across repetitions and transaction types
    #: (simulated ms) -- the sample behind the row's SLO percentiles.
    latencies: List[float] = field(default_factory=list)

    def as_row(self, *, include_histogram: bool = False) -> Dict[str, object]:
        row: Dict[str, object] = {
            "protocol": self.cell.protocol,
            "lock_depth": self.cell.lock_depth,
            "isolation": self.cell.isolation,
            "shards": self.cell.shards,
            "runs": self.runs,
            "committed": round(self.committed, 2),
            "aborted": round(self.aborted, 2),
            "deadlocks": round(self.deadlocks, 2),
            "aborted_deadlock": round(self.aborted_by_kind.get("deadlock", 0.0), 2),
            "aborted_timeout": round(self.aborted_by_kind.get("timeout", 0.0), 2),
            "aborted_storage": round(self.aborted_by_kind.get("storage", 0.0), 2),
            "aborted_shard_unavailable": round(
                self.aborted_by_kind.get("shard-unavailable", 0.0), 2
            ),
            "deadlocks_conversion": round(
                self.deadlocks_by_kind.get("conversion", 0.0), 2
            ),
            "deadlocks_distinct_subtree": round(
                self.deadlocks_by_kind.get("distinct-subtree", 0.0), 2
            ),
            "lock_waits": round(self.lock_waits, 2),
            "wait_mean_ms": round(self.wait_mean_ms, 3),
            "wait_max_ms": round(self.wait_max_ms, 3),
            "wait_total_ms": round(self.wait_total_ms, 6),
        }
        slo = latency_slo(self.latencies)
        for key in ("p50_ms", "p99_ms", "p999_ms"):
            row[key] = round(slo.get(key, 0.0), 3)
        for txn_type, value in sorted(self.by_type.items()):
            row[txn_type] = round(value, 2)
        if include_histogram:
            row["wait_histogram"] = canonical_histogram(self.wait_histogram)
        return row


@dataclass
class SweepSpec:
    """An experiment matrix, in the spirit of the paper's test plans.

    The paper's CLUSTER1 plan: "isolation levels: none, uncommitted,
    committed, repeatable; lock depths where applicable: 0 to 7; number
    of runs per isolation level and lock depth: 4; run duration: 5 mins".
    """

    protocols: Sequence[str]
    lock_depths: Sequence[int] = (0, 1, 2, 3, 4, 5, 6, 7)
    isolations: Sequence[str] = ("repeatable",)
    runs_per_cell: int = 1
    scale: float = 0.1
    run_duration_ms: float = 60_000.0
    base_seed: int = 42
    #: Shard counts to sweep over (1 = single-node).  Combinations a
    #: protocol cannot shard (root-navigating protocols, lock depths
    #: above the partition level) are skipped, mirroring how depth-
    #: unaware protocols collapse the depth axis.
    shards: Sequence[int] = (1,)
    #: Transport for sharded cells (``sim`` or ``process``); both are
    #: deterministic and produce identical results for the same seed.
    shard_transport: str = "sim"
    #: Fault schedule for sharded cells: a built-in name or a JSON file
    #: path (kept as a string so worker processes can pickle the spec).
    #: Only ``net.request``/``net.reply``/``shard.crash`` sites apply;
    #: ``None`` runs fault-free.  Single-node cells ignore it.
    fault_schedule: Optional[str] = None
    #: Chaos engine seed for faulted sharded cells (independent of the
    #: workload seed so fault placement can be varied separately).
    chaos_seed: int = 0

    def cells(self) -> Iterable[SweepCell]:
        if self.runs_per_cell < 1:
            raise BenchmarkError("runs_per_cell must be >= 1")
        for protocol in self.protocols:
            proto = get_protocol(protocol)
            depths = (
                self.lock_depths if proto.supports_lock_depth
                else (self.lock_depths[0],)
            )
            for depth in depths:
                for isolation in self.isolations:
                    for count in self.shards:
                        if count > 1 and not shardable(protocol, depth):
                            continue
                        for run in range(self.runs_per_cell):
                            yield SweepCell(
                                protocol, depth, isolation, run, count
                            )


def shardable(protocol: str, lock_depth: int) -> bool:
    """Whether a (protocol, depth) cell admits a sharded (>1) run."""
    from repro.shard.runner import validate_sharding

    try:
        validate_sharding(protocol, lock_depth, 2)
    except BenchmarkError:
        return False
    return True


def trace_filename(cell: SweepCell) -> str:
    """The JSONL trace filename for one cell run (stable, per-run)."""
    shard_tag = f"_s{cell.shards}" if cell.shards > 1 else ""
    return (
        f"{cell.protocol}_d{cell.lock_depth}_{cell.isolation}"
        f"{shard_tag}_r{cell.run}.jsonl"
    )


def _execute_cell(
    spec: SweepSpec,
    cell: SweepCell,
    trace_dir: Union[str, Path, None] = None,
    access_events: bool = False,
) -> RunResult:
    """Run one cell (module-level so worker processes can unpickle it).

    The per-cell seed depends only on the spec and the cell, never on
    execution order, which keeps parallel sweeps deterministic.  With a
    ``trace_dir`` the cell records its full event trace straight into
    ``<trace_dir>/<protocol>_d<depth>_<isolation>_r<run>.jsonl`` (sink
    mirroring, so no ring capacity limit applies).  ``access_events``
    additionally records the ``op.access``/``run.info`` stream the
    :mod:`repro.verify` history oracle checks.
    """
    observability = None
    if trace_dir is not None:
        from repro.obs import Observability

        sink = Path(trace_dir) / trace_filename(cell)
        observability = Observability.enabled(
            capacity=1, sink=sink, access_events=access_events
        )
    try:
        if cell.shards > 1:
            from repro.shard.runner import run_sharded_cluster1

            fault_schedule = None
            if spec.fault_schedule:
                from repro.chaos.schedule import load_schedule

                fault_schedule = load_schedule(spec.fault_schedule)
            return run_sharded_cluster1(
                cell.protocol,
                shards=cell.shards,
                lock_depth=cell.lock_depth,
                isolation=cell.isolation,
                scale=spec.scale,
                run_duration_ms=spec.run_duration_ms,
                seed=spec.base_seed + cell.run,
                observability=observability,
                transport=spec.shard_transport,
                fault_schedule=fault_schedule,
                chaos_seed=spec.chaos_seed + cell.run,
            )
        return run_cluster1(
            cell.protocol,
            lock_depth=cell.lock_depth,
            isolation=cell.isolation,
            scale=spec.scale,
            run_duration_ms=spec.run_duration_ms,
            seed=spec.base_seed + cell.run,
            observability=observability,
        )
    finally:
        if observability is not None:
            observability.close()


class SweepRunner:
    """Runs a :class:`SweepSpec` and aggregates per-cell repetitions.

    With ``workers > 1`` the independent cells are fanned out across a
    process pool; aggregation still happens in matrix order, so the
    results match a serial run exactly.  When a pool cannot be created
    (restricted environments) the runner silently falls back to serial
    execution.

    Fault tolerance: when the pool breaks mid-sweep, every cell whose
    result already arrived is *kept* and only the unfinished remainder
    re-runs serially (cells are deterministic, so a rerun of a lost
    in-flight cell reproduces its result exactly).  ``cell_timeout_s``
    bounds each parallel cell; a serial (re-)execution that raises is
    retried up to ``cell_retries`` extra times.  With a ``journal``
    path every finished cell is appended to a JSONL journal, and
    ``resume=True`` aggregates journaled cells instead of re-running
    them -- producing byte-identical CSV/JSON to an uninterrupted run.
    """

    def __init__(
        self,
        spec: SweepSpec,
        *,
        workers: int = 1,
        trace_dir: Union[str, Path, None] = None,
        access_events: bool = False,
        journal: Union[str, Path, None] = None,
        resume: bool = False,
        cell_timeout_s: Optional[float] = None,
        cell_retries: int = 1,
    ):
        self.spec = spec
        self.workers = max(1, int(workers)) if workers else 1
        self.trace_dir = None if trace_dir is None else Path(trace_dir)
        self.access_events = bool(access_events)
        self.journal_path = None if journal is None else Path(journal)
        self.resume = bool(resume)
        if self.resume and self.journal_path is None:
            raise BenchmarkError("resume requires a journal path")
        self.cell_timeout_s = cell_timeout_s
        self.cell_retries = max(0, int(cell_retries))
        #: Aggregated results keyed ``(protocol, depth, isolation, shards)``
        #: (legacy three-part keys are still accepted and sort as shards=1).
        self.results: Dict[Tuple, CellResult] = {}
        #: Cells taken from the journal on the last ``run`` (resume).
        self.resumed_cells = 0

    def run(self, *, progress=None, stop_after: Optional[int] = None
            ) -> List[CellResult]:
        """Execute the matrix; ``stop_after`` caps *freshly executed*
        cells (for testing resume -- journaled cells don't count)."""
        cells = list(self.spec.cells())
        self.results = {}
        self.resumed_cells = 0
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        journal = None
        done: Dict[SweepCell, RunResult] = {}
        if self.journal_path is not None:
            from repro.tamix.journal import SweepJournal

            journal = SweepJournal(self.journal_path, self.spec)
            if self.resume:
                done = journal.load()
            journal.open_for_append(fresh=not self.resume)
        try:
            pending = [cell for cell in cells if cell not in done]
            if stop_after is not None:
                pending = pending[:max(0, stop_after)]
            pending_set = set(pending)
            fresh = self._pending_outcomes(pending)
            # Merge journaled and fresh outcomes in matrix order, so the
            # aggregation (incremental averaging) orders identically to
            # an uninterrupted run -- the basis of byte-identical resume.
            for cell in cells:
                if cell in done:
                    outcome = done[cell]
                    self.resumed_cells += 1
                elif cell in pending_set:
                    outcome = next(fresh)[1]
                    if journal is not None:
                        journal.record(cell, outcome)
                else:
                    continue  # cut off by stop_after
                self._aggregate(cell, outcome)
                if progress is not None:
                    progress(cell, outcome)
        finally:
            if journal is not None:
                journal.close()
        return self.sorted_results()

    def _pending_outcomes(self, pending: List[SweepCell]):
        """Yield ``(cell, outcome)`` for every pending cell, in order.

        Parallel execution handles as many cells as the pool survives
        for; the remainder (including the cell that was in flight when
        the pool broke or timed out) runs serially with bounded retry.
        Unlike the pre-journal behaviour, completed parallel results are
        never discarded.
        """
        remaining = pending
        if self.workers > 1 and len(remaining) > 1:
            delivered = 0
            for pair in self._iter_parallel(remaining):
                if pair is None:
                    break
                yield pair
                delivered += 1
            remaining = remaining[delivered:]
        for cell in remaining:
            yield (cell, self._execute_with_retry(cell))

    def _execute_with_retry(self, cell: SweepCell) -> RunResult:
        attempts = 1 + self.cell_retries
        for attempt in range(1, attempts + 1):
            try:
                return _execute_cell(self.spec, cell, self.trace_dir,
                                     self.access_events)
            except BenchmarkError:
                raise  # misconfiguration: retrying cannot help
            except Exception:
                if attempt == attempts:
                    raise

    def _iter_parallel(self, cells: List[SweepCell]):
        """Yield (cell, outcome) pairs *live*, in matrix order.

        Results are consumed per-future (not gathered), so a ``progress``
        callback fires as soon as each matrix-order cell is done -- later
        cells may already have finished in the background.  Yields
        ``None`` (then stops) when no process pool is available, the pool
        breaks mid-run, or a cell exceeds ``cell_timeout_s`` -- the
        caller falls back to serial execution for the cells not yet
        delivered.
        """
        try:
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures import TimeoutError as FutureTimeout
            from concurrent.futures.process import BrokenProcessPool
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(cells))
            )
        except (ImportError, NotImplementedError, OSError, ValueError):
            yield None
            return
        try:
            futures = [
                pool.submit(_execute_cell, self.spec, cell,
                            self.trace_dir, self.access_events)
                for cell in cells
            ]
            for cell, future in zip(cells, futures):
                try:
                    yield (cell, future.result(timeout=self.cell_timeout_s))
                except BrokenProcessPool:
                    yield None
                    return
                except FutureTimeout:
                    yield None
                    return
                except Exception:
                    # A deterministic in-cell failure: the serial retry
                    # path decides whether it is fatal.
                    yield None
                    return
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def sorted_results(self) -> List[CellResult]:
        return [
            self.results[key]
            for key in sorted(
                self.results,
                key=lambda k: (k[0], k[2], k[1], k[3] if len(k) > 3 else 1),
            )
        ]

    # -- persistence ---------------------------------------------------------

    def to_csv(self, *, include_histogram: bool = False) -> str:
        rows = []
        for result in self.sorted_results():
            row = result.as_row()
            if include_histogram:
                # Flattened in canonical bucket order, so the header is
                # identical whichever protocols (or none) ever waited.
                buckets = canonical_histogram(result.wait_histogram)
                for bucket, count in buckets.items():
                    row[f"wait_{bucket}"] = count
            rows.append(row)
        if not rows:
            return ""
        fieldnames = list(rows[0])
        seen = set(fieldnames)
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    fieldnames.append(key)
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=fieldnames, restval=0)
        writer.writeheader()
        writer.writerows(rows)
        return out.getvalue()

    def to_json(self) -> str:
        return json.dumps(
            [
                result.as_row(include_histogram=True)
                for result in self.sorted_results()
            ],
            indent=2,
        )

    def series(self, metric: str = "committed",
               isolation: Optional[str] = None,
               shards: Optional[int] = None) -> Dict[str, List[float]]:
        """Per-protocol series over lock depth (line-chart ready)."""
        isolation = isolation or self.spec.isolations[0]
        if shards is None:
            shards = self.spec.shards[0] if self.spec.shards else 1
        series: Dict[str, List[float]] = {}
        for result in self.sorted_results():
            if result.cell.isolation != isolation:
                continue
            if result.cell.shards != shards:
                continue
            value = getattr(result, metric)
            series.setdefault(result.cell.protocol, []).append(value)
        return series

    # -- internals -----------------------------------------------------------------

    def _aggregate(self, cell: SweepCell, outcome: RunResult) -> None:
        key = (cell.protocol, cell.lock_depth, cell.isolation, cell.shards)
        slot = self.results.get(key)
        if slot is None:
            slot = CellResult(
                SweepCell(cell.protocol, cell.lock_depth, cell.isolation,
                          shards=cell.shards)
            )
            self.results[key] = slot
        n = slot.runs
        slot.committed = (slot.committed * n + outcome.committed) / (n + 1)
        slot.aborted = (slot.aborted * n + outcome.aborted) / (n + 1)
        slot.deadlocks = (slot.deadlocks * n + outcome.deadlocks) / (n + 1)
        for txn_type, metrics in outcome.by_type.items():
            previous = slot.by_type.get(txn_type, 0.0)
            slot.by_type[txn_type] = (previous * n + metrics.committed) / (n + 1)
            slot.latencies.extend(metrics.durations)
        for kind, count in outcome.aborted_by_kind.items():
            previous = slot.aborted_by_kind.get(kind, 0.0)
            slot.aborted_by_kind[kind] = (previous * n + count) / (n + 1)
        for kind, count in outcome.deadlocks_by_kind.items():
            previous = slot.deadlocks_by_kind.get(kind, 0.0)
            slot.deadlocks_by_kind[kind] = (previous * n + count) / (n + 1)
        wait = outcome.wait_stats
        if wait:
            slot.lock_waits = (slot.lock_waits * n + wait["count"]) / (n + 1)
            slot.wait_mean_ms = (slot.wait_mean_ms * n + wait["mean_ms"]) / (n + 1)
            slot.wait_max_ms = max(slot.wait_max_ms, wait["max_ms"])
        histogram = outcome.wait_histogram
        if histogram:
            slot.wait_total_ms += float(histogram.get("total", 0.0))
            for bucket, count in histogram["buckets"].items():
                slot.wait_histogram[bucket] = (
                    slot.wait_histogram.get(bucket, 0) + count
                )
        slot.runs = n + 1
