"""An XMark-style workload -- and why it cannot judge lock protocols.

Section 4.1 of the paper reviews the existing XML benchmarks and finds
them unsuitable: "the scope of XMark is the XML query processor and
concentrates on single-user mode only" -- a concurrency-control study
needs multi-user operation and update transactions.

This module makes that argument executable.  It provides a simplified
XMark auction document generator and a read-only query mix (XMark-like
queries expressed in the :mod:`repro.query` XPath subset), plus a
multi-user runner.  The accompanying ablation benchmark shows that under
this workload every lock protocol performs identically and the lock
manager records essentially no waits -- whereas TaMix separates the
protocol groups decisively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.database import Database
from repro.dom.document import Document
from repro.errors import BenchmarkError, TransactionAborted
from repro.query.engine import QueryProcessor
from repro.sched.simulator import Delay, Simulator
from repro.storage.buffer import make_buffered_store

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
_CATEGORIES = ("art", "books", "coins", "computers", "music", "stamps")
_NAMES = ("Ada", "Edgar", "Grace", "Jim", "Michael", "Pat", "Theo")


@dataclass
class AuctionInfo:
    """Identifiers the XMark-style queries draw from."""

    document: Document
    item_ids: List[str] = field(default_factory=list)
    person_ids: List[str] = field(default_factory=list)
    auction_ids: List[str] = field(default_factory=list)


def generate_auction(scale: float = 0.1, *, seed: int = 1999) -> AuctionInfo:
    """A simplified XMark auction-site document.

    ``scale=1.0`` yields roughly 600 items, 255 persons, and 120 open
    auctions (a miniature of XMark's factor-0.1 document -- large enough
    to exercise the same code paths without dominating the suite).
    """
    if scale <= 0:
        raise BenchmarkError(f"scale must be positive, got {scale}")
    rng = random.Random(seed)
    n_items_per_region = max(1, round(100 * scale))
    n_persons = max(2, round(255 * scale))
    n_auctions = max(1, round(120 * scale))

    document = Document(
        name=f"auction-{scale}", root_element="site",
        buffer=make_buffered_store(pool_size=4096),
    )
    info = AuctionInfo(document=document)
    root = document.root

    regions = document.add_element(root, "regions")
    item_number = 0
    for region_name in _REGIONS:
        region = document.add_element(regions, region_name)
        for _i in range(n_items_per_region):
            item_id = f"item{item_number}"
            item_number += 1
            item = document.add_element(region, "item")
            document.set_attribute(item, "id", item_id)
            name = document.add_element(item, "name")
            document.add_text(name, f"Lot {item_number}")
            category = document.add_element(item, "incategory")
            document.set_attribute(
                category, "category", rng.choice(_CATEGORIES)
            )
            quantity = document.add_element(item, "quantity")
            document.add_text(quantity, str(rng.randint(1, 5)))
            info.item_ids.append(item_id)

    people = document.add_element(root, "people")
    for p in range(n_persons):
        person_id = f"person{p}"
        person = document.add_element(people, "person")
        document.set_attribute(person, "id", person_id)
        name = document.add_element(person, "name")
        document.add_text(name, rng.choice(_NAMES))
        if rng.random() < 0.6:
            document.set_attribute(person, "income", str(rng.randint(20, 120) * 1000))
        info.person_ids.append(person_id)

    open_auctions = document.add_element(root, "open_auctions")
    for a in range(n_auctions):
        auction_id = f"open_auction{a}"
        auction = document.add_element(open_auctions, "open_auction")
        document.set_attribute(auction, "id", auction_id)
        itemref = document.add_element(auction, "itemref")
        document.set_attribute(itemref, "item", rng.choice(info.item_ids))
        current = document.add_element(auction, "current")
        document.add_text(current, f"{rng.randint(1, 500)}.00")
        for _b in range(rng.randint(1, 5)):
            bid = document.add_element(auction, "bidder")
            document.set_attribute(bid, "person", rng.choice(info.person_ids))
        info.auction_ids.append(auction_id)
    return info


#: XMark-flavoured queries expressible in the XPath subset; each function
#: of the RNG picks concrete identifiers (like XMark's parameterization).
def xmark_query_mix(info: AuctionInfo, rng: random.Random) -> str:
    templates = (
        lambda: f"id('{rng.choice(info.person_ids)}')/name/text()",   # ~Q1
        lambda: "/site/regions/australia/item/name/text()",           # ~Q6
        lambda: f"id('{rng.choice(info.auction_ids)}')/bidder/@person",  # ~Q8ish
        lambda: "/site/open_auctions/open_auction/current/text()",    # ~Q18
        lambda: "/site/people/person[@income]/name/text()",           # ~Q10ish
        lambda: f"id('{rng.choice(info.item_ids)}')/incategory/@category",
    )
    return rng.choice(templates)()


@dataclass
class XmarkResult:
    protocol: str
    completed_queries: int = 0
    aborted: int = 0
    lock_waits: int = 0
    deadlocks: int = 0


def run_xmark(
    protocol: str,
    *,
    scale: float = 0.1,
    clients: int = 24,
    run_duration_ms: float = 30_000.0,
    think_ms: float = 200.0,
    lock_depth: int = 4,
    seed: int = 5,
    info: AuctionInfo = None,
) -> XmarkResult:
    """Multi-user, read-only XMark-style run (the unsuitable workload)."""
    if info is None:
        info = generate_auction(scale=scale)
    database = Database(
        protocol=protocol, lock_depth=lock_depth, document=info.document,
    )
    sim = Simulator()
    database.set_clock(lambda: sim.now)
    result = XmarkResult(protocol=protocol)
    rng = random.Random(seed)

    def client(client_rng):
        processor = QueryProcessor(database.nodes)
        yield Delay(client_rng.uniform(0.0, think_ms))
        while sim.now < run_duration_ms:
            txn = database.begin("xmark-query")
            try:
                yield from processor.evaluate(
                    txn, xmark_query_mix(info, client_rng)
                )
            except TransactionAborted:
                database.abort(txn)
                result.aborted += 1
                continue
            database.commit(txn)
            result.completed_queries += 1
            yield Delay(think_ms)

    for _c in range(clients):
        sim.spawn(client(random.Random(rng.randrange(2 ** 62))))
    sim.run(until=run_duration_ms)
    stats = database.locks.lock_statistics()
    result.lock_waits = stats["waits"]
    result.deadlocks = stats["deadlocks"]
    return result
