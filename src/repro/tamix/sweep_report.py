"""Self-contained experiment reports from persisted sweep results.

``repro sweep --json sweep.json`` persists the experiment matrix;
``repro report sweep.json`` turns it into a Markdown or HTML report with
the paper's comparison shapes: per-protocol throughput tables, Fig. 7/9
style throughput-over-lock-depth curves, and contention heatmaps -- all
rendered through the ASCII chart helpers in :mod:`repro.tamix.report`.

Determinism is a hard requirement: the report is a pure function of the
result rows (no timestamps, no environment probes), so the same seeded
sweep always yields a byte-identical report.
"""

from __future__ import annotations

import html as html_module
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.tamix.report import heatmap, line_chart
from repro.tamix.sweep import HISTOGRAM_BUCKET_ORDER

Row = Dict[str, object]


def load_rows(source: Union[str, Path, Sequence[Row]]) -> List[Row]:
    """Result rows from a ``to_json`` file path or an in-memory list."""
    if isinstance(source, (str, Path)):
        rows = json.loads(Path(source).read_text(encoding="utf-8"))
    else:
        rows = list(source)
    if not isinstance(rows, list):
        raise ValueError("sweep results must be a JSON list of cell rows")
    return rows


class _ReportData:
    """The sweep matrix re-indexed for rendering."""

    def __init__(self, rows: Sequence[Row]):
        self.rows = list(rows)
        self.protocols: List[str] = []
        self.depths: List[int] = []
        self.isolations: List[str] = []
        self.shard_counts: List[int] = []
        self.by_cell: Dict[Tuple[str, int, str], Row] = {}
        self.by_shard_cell: Dict[Tuple[str, int, str, int], Row] = {}
        for row in self.rows:
            protocol = str(row["protocol"])
            depth = int(row["lock_depth"])
            isolation = str(row["isolation"])
            # Rows persisted before the shard axis carry no key: shards=1.
            shards = int(row.get("shards", 1))
            if protocol not in self.protocols:
                self.protocols.append(protocol)
            if depth not in self.depths:
                self.depths.append(depth)
            if isolation not in self.isolations:
                self.isolations.append(isolation)
            if shards not in self.shard_counts:
                self.shard_counts.append(shards)
            self.by_shard_cell[(protocol, depth, isolation, shards)] = row
        self.depths.sort()
        self.shard_counts.sort()
        # The depth-axis sections read the baseline (lowest shard count)
        # slice, so reports of pure single-node sweeps are unchanged.
        baseline = self.shard_counts[0] if self.shard_counts else 1
        for (protocol, depth, isolation, shards), row in \
                self.by_shard_cell.items():
            if shards == baseline:
                self.by_cell[(protocol, depth, isolation)] = row

    def value(self, protocol: str, depth: int, isolation: str,
              metric: str) -> object:
        row = self.by_cell.get((protocol, depth, isolation))
        if row is None:
            return None
        return row.get(metric)

    def series(self, isolation: str, metric: str) -> Dict[str, List[float]]:
        """Per-protocol series over lock depth (missing cells carried
        forward as the protocol's single depth-unaware value)."""
        series: Dict[str, List[float]] = {}
        for protocol in self.protocols:
            values: List[float] = []
            last = 0.0
            for depth in self.depths:
                value = self.value(protocol, depth, isolation, metric)
                if value is not None:
                    last = float(value)  # depth-unaware: constant line
                values.append(last)
            series[protocol] = values
        return series

    def grid(self, isolation: str, metric: str) -> Dict[str, Dict[int, float]]:
        grid: Dict[str, Dict[int, float]] = {}
        for protocol in self.protocols:
            row: Dict[int, float] = {}
            for depth in self.depths:
                value = self.value(protocol, depth, isolation, metric)
                if value is not None:
                    row[depth] = float(value)
            grid[protocol] = row
        return grid

    def protocol_totals(self, isolation: str) -> List[Dict[str, object]]:
        """One summary line per protocol at the given isolation."""
        totals = []
        for protocol in self.protocols:
            cells = [
                self.by_cell[key] for key in sorted(self.by_cell)
                if key[0] == protocol and key[2] == isolation
            ]
            if not cells:
                continue
            best = max(float(row.get("committed", 0.0)) for row in cells)
            totals.append({
                "protocol": protocol,
                "best_committed": best,
                "aborted": sum(float(r.get("aborted", 0.0)) for r in cells),
                "deadlocks": sum(float(r.get("deadlocks", 0.0)) for r in cells),
                "wait_total_ms": sum(
                    float(r.get("wait_total_ms", 0.0)) for r in cells
                ),
            })
        return totals


def _md_table(header: Sequence[str], body: Sequence[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(str(cell) for cell in header) + " |",
        "|" + "|".join(" --- " for _cell in header) + "|",
    ]
    for row in body:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _sections(data: _ReportData) -> List[Tuple[str, str, str]]:
    """(heading, kind, payload) sections; kind is ``table`` (markdown
    table text), ``chart`` (preformatted block), or ``text``."""
    sections: List[Tuple[str, str, str]] = []
    sections.append((
        "Experiment matrix",
        "text",
        f"protocols: {', '.join(data.protocols)}  \n"
        f"lock depths: {', '.join(str(d) for d in data.depths)}  \n"
        f"isolation levels: {', '.join(data.isolations)}  \n"
        f"cells: {len(data.rows)}",
    ))
    for isolation in data.isolations:
        header = ["protocol"] + [f"d={d}" for d in data.depths]
        body = []
        for protocol in data.protocols:
            body.append([protocol] + [
                _fmt(data.value(protocol, depth, isolation, "committed"))
                for depth in data.depths
            ])
        sections.append((
            f"Committed transactions -- isolation {isolation}",
            "table",
            _md_table(header, body),
        ))
        if len(data.depths) > 1:
            sections.append((
                f"Throughput over lock depth -- isolation {isolation}",
                "chart",
                line_chart(
                    data.series(isolation, "committed"),
                    x_labels=data.depths,
                    title="committed transactions",
                ),
            ))
        sections.append((
            f"Contention heatmap (blocking ms) -- isolation {isolation}",
            "chart",
            heatmap(
                data.grid(isolation, "wait_total_ms"),
                columns=data.depths,
                title="total lock-wait time (ms)",
            ),
        ))
        slo_body = []
        for protocol in data.protocols:
            for depth in data.depths:
                row = data.by_cell.get((protocol, depth, isolation))
                if row is None or "p50_ms" not in row:
                    continue
                slo_body.append([
                    protocol, depth,
                    _fmt(row.get("p50_ms")), _fmt(row.get("p99_ms")),
                    _fmt(row.get("p999_ms")),
                ])
        if slo_body:
            sections.append((
                f"Commit-latency SLO percentiles -- isolation {isolation}",
                "table",
                _md_table(
                    ["protocol", "depth", "p50 ms", "p99 ms", "p999 ms"],
                    slo_body,
                ),
            ))
        totals = data.protocol_totals(isolation)
        if totals:
            sections.append((
                f"Protocol summary -- isolation {isolation}",
                "table",
                _md_table(
                    ["protocol", "best committed", "aborted",
                     "deadlocks", "blocking ms"],
                    [
                        [
                            t["protocol"], _fmt(t["best_committed"]),
                            _fmt(t["aborted"]), _fmt(t["deadlocks"]),
                            _fmt(t["wait_total_ms"]),
                        ]
                        for t in totals
                    ],
                ),
            ))
    if len(data.shard_counts) > 1 or (
        data.shard_counts and data.shard_counts[0] > 1
    ):
        header = ["protocol", "depth", "isolation"] + [
            f"s={count}" for count in data.shard_counts
        ]
        body = []
        for isolation in data.isolations:
            for protocol in data.protocols:
                for depth in data.depths:
                    values = [
                        data.by_shard_cell.get(
                            (protocol, depth, isolation, count)
                        )
                        for count in data.shard_counts
                    ]
                    if all(row is None for row in values):
                        continue
                    body.append([protocol, depth, isolation] + [
                        _fmt(None if row is None else row.get("committed"))
                        for row in values
                    ])
        sections.append((
            "Shard scale-up (committed transactions per shard count)",
            "table",
            _md_table(header, body),
        ))
    histogram_rows = [
        row for row in data.rows if row.get("wait_histogram")
    ]
    if histogram_rows:
        header = ["protocol", "depth", "isolation"] + list(
            HISTOGRAM_BUCKET_ORDER
        )
        body = []
        for row in histogram_rows:
            buckets = row["wait_histogram"]
            body.append(
                [row["protocol"], row["lock_depth"], row["isolation"]]
                + [buckets.get(bucket, 0) for bucket in HISTOGRAM_BUCKET_ORDER]
            )
        sections.append((
            "Wait-time histograms (bucket counts, ms upper bounds)",
            "table",
            _md_table(header, body),
        ))
    return sections


def render_markdown(
    source: Union[str, Path, Sequence[Row]],
    *,
    title: str = "TaMix sweep report",
) -> str:
    """The sweep as a self-contained Markdown report (deterministic)."""
    data = _ReportData(load_rows(source))
    parts = [f"# {title}", ""]
    for heading, kind, payload in _sections(data):
        parts.append(f"## {heading}")
        parts.append("")
        if kind == "chart":
            parts.append("```")
            parts.append(payload)
            parts.append("```")
        else:
            parts.append(payload)
        parts.append("")
    return "\n".join(parts)


_HTML_STYLE = (
    "body{font-family:sans-serif;margin:2em;max-width:72em}"
    "table{border-collapse:collapse;margin:1em 0}"
    "td,th{border:1px solid #999;padding:0.25em 0.6em;text-align:right}"
    "th:first-child,td:first-child{text-align:left}"
    "pre{background:#f4f4f4;padding:1em;overflow-x:auto}"
)


def _html_table(table_md: str) -> str:
    lines = [line for line in table_md.splitlines() if line.strip()]
    out = ["<table>"]
    for index, line in enumerate(lines):
        if set(line.replace("|", "").strip()) <= {"-", " "}:
            continue  # the markdown separator row
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        tag = "th" if index == 0 else "td"
        out.append(
            "<tr>" + "".join(
                f"<{tag}>{html_module.escape(cell)}</{tag}>"
                for cell in cells
            ) + "</tr>"
        )
    out.append("</table>")
    return "\n".join(out)


def render_html(
    source: Union[str, Path, Sequence[Row]],
    *,
    title: str = "TaMix sweep report",
) -> str:
    """The sweep as one self-contained HTML page (deterministic)."""
    data = _ReportData(load_rows(source))
    escaped_title = html_module.escape(title)
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{escaped_title}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{escaped_title}</h1>",
    ]
    for heading, kind, payload in _sections(data):
        parts.append(f"<h2>{html_module.escape(heading)}</h2>")
        if kind == "table":
            parts.append(_html_table(payload))
        elif kind == "chart":
            parts.append(f"<pre>{html_module.escape(payload)}</pre>")
        else:
            text = html_module.escape(payload).replace("  \n", "<br>")
            parts.append(f"<p>{text}</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
