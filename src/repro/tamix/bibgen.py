"""Generator for the bib library document (Section 4.3, Figure 5).

Full-scale composition as in the paper:

* 1000 person elements and 100 author elements,
* 2000 book elements equally distributed across 100 topic elements
  (20 per topic),
* each book owns 5 to 10 chapter elements,
* a history element owns with equal probability 9 or 10 lend elements.

The ``scale`` parameter shrinks everything proportionally (the paper notes
bib "is highly scalable and may range from a few Kbytes to several hundred
Mbytes"); generation is deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.dom.document import Document
from repro.errors import BenchmarkError
from repro.storage.buffer import make_buffered_store

_FIRST_NAMES = ("Jim", "Theo", "Pat", "Erhard", "Michael", "Don", "Andreas",
                "Sabine", "Konstantin", "Elke")
_LAST_NAMES = ("Gray", "Haerder", "O'Neil", "Rahm", "Haustein", "Chamberlin",
               "Reuter", "Mohan", "Luttenberger", "Schek")
_TITLE_WORDS = ("Transaction", "Processing", "Concepts", "Techniques", "XML",
                "Database", "Systems", "Concurrency", "Control", "Recovery",
                "Indexing", "Benchmark")


@dataclass
class BibInfo:
    """Identifiers the TaMix transactions draw from."""

    document: Document
    book_ids: List[str] = field(default_factory=list)
    topic_ids: List[str] = field(default_factory=list)
    person_ids: List[str] = field(default_factory=list)

    @property
    def books(self) -> int:
        return len(self.book_ids)

    @property
    def topics(self) -> int:
        return len(self.topic_ids)


def generate_bib(
    scale: float = 1.0,
    *,
    seed: int = 2006,
    buffer_pool_pages: int = 8192,
    books_per_topic: int = 20,
) -> BibInfo:
    """Build the bib document at the given scale.

    ``scale=1.0`` is the paper's configuration (2000 books, 100 topics,
    1000 persons, 100 authors).
    """
    if scale <= 0:
        raise BenchmarkError(f"scale must be positive, got {scale}")
    rng = random.Random(seed)
    n_topics = max(1, round(100 * scale))
    n_books = n_topics * books_per_topic
    n_persons = max(1, round(1000 * scale))
    n_authors = max(1, round(100 * scale))

    document = Document(
        name=f"bib-{scale}", root_element="bib",
        buffer=make_buffered_store(pool_size=buffer_pool_pages),
    )
    info = BibInfo(document=document)
    root = document.root

    persons = document.add_element(root, "persons")
    for p in range(n_persons):
        person_id = f"p{p}"
        person = document.add_element(persons, "person")
        document.set_attribute(person, "id", person_id)
        name = document.add_element(person, "name")
        first = document.add_element(name, "first")
        document.add_text(first, rng.choice(_FIRST_NAMES))
        last = document.add_element(name, "last")
        document.add_text(last, rng.choice(_LAST_NAMES))
        info.person_ids.append(person_id)

    authors = document.add_element(root, "authors")
    for a in range(n_authors):
        author = document.add_element(authors, "author")
        document.set_attribute(author, "id", f"a{a}")
        document.add_text(author, rng.choice(_LAST_NAMES))

    topics = document.add_element(root, "topics")
    book_number = 0
    for t in range(n_topics):
        topic_id = f"t{t}"
        topic = document.add_element(topics, "topic")
        document.set_attribute(topic, "id", topic_id)
        info.topic_ids.append(topic_id)
        for _b in range(books_per_topic):
            book_id = f"b{book_number}"
            book_number += 1
            book = document.add_element(topic, "book")
            document.set_attribute(book, "id", book_id)
            document.set_attribute(book, "year", str(rng.randint(1985, 2006)))
            title = document.add_element(book, "title")
            document.add_text(
                title, " ".join(rng.sample(_TITLE_WORDS, 3))
            )
            author = document.add_element(book, "author")
            document.add_text(author, rng.choice(_LAST_NAMES))
            price = document.add_element(book, "price")
            document.add_text(price, f"{rng.randint(10, 200)}.{rng.randint(0,99):02d}")
            chapters = document.add_element(book, "chapters")
            for c in range(rng.randint(5, 10)):
                chapter = document.add_element(chapters, "chapter")
                ch_title = document.add_element(chapter, "title")
                document.add_text(ch_title, f"Chapter {c + 1}")
                summary = document.add_element(chapter, "summary")
                document.add_text(
                    summary, " ".join(rng.sample(_TITLE_WORDS, 4))
                )
            history = document.add_element(book, "history")
            for _l in range(rng.choice((9, 10))):
                lend = document.add_element(history, "lend")
                document.set_attribute(
                    lend, "person", f"p{rng.randrange(n_persons)}"
                )
                document.set_attribute(
                    lend, "return", f"2006-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
                )
            info.book_ids.append(book_id)
    return info
