"""The five TaMix transaction types (Section 4.2).

Each transaction is a generator taking the node manager, a transaction
object, a seeded RNG, the :class:`~repro.tamix.bibgen.BibInfo`, and the
TaMix configuration.  Client think time (waitAfterOperation) is charged
per visited node, emulating the operation-by-operation pacing of the
paper's clients without exploding the event count.

* **TAqueryBook** -- direct jump to a random book (via ID / index) and a
  navigational read of its whole subtree.  Pure reader: provides the
  continuous load the IUD transactions compete against.
* **TAchapter** -- the same read profile followed by an update of one
  chapter text node (read -> write conversion).
* **TAdelBook** -- read profile on a random topic followed by deletion of
  a book subtree (the CLUSTER2 transaction).
* **TAlendAndReturn** -- direct jump to a random book, navigation into its
  history, then updates, deletions, and insertions of lend elements.
* **TArenameTopic** -- direct jump to a random topic and a rename.
"""

from __future__ import annotations

import random
from typing import Dict, Generator

from repro.core.protocol import Access
from repro.dom.node_manager import NodeManager
from repro.sched.simulator import Delay
from repro.splid import Splid
from repro.storage.record import NodeKind
from repro.tamix.bibgen import BibInfo
from repro.txn.transaction import Transaction

#: Synonyms used by TArenameTopic.
_TOPIC_NAMES = ("topic", "subject", "category", "area")


def _think(cfg, units: int):
    """Client think time for ``units`` operations."""
    if cfg.wait_after_operation > 0 and units > 0:
        yield Delay(cfg.wait_after_operation * units)


def ta_query_book(nm: NodeManager, txn: Transaction, rng: random.Random,
                  info: BibInfo, cfg) -> Generator:
    """Select a random book by ID and read all of its descendants."""
    book_id = rng.choice(info.book_ids)
    book = yield from nm.get_element_by_id(txn, book_id)
    yield from _think(cfg, 1)
    if book is None:
        return
    entries = yield from nm.read_subtree(txn, book)
    yield from _think(cfg, len(entries))


def ta_chapter(nm: NodeManager, txn: Transaction, rng: random.Random,
               info: BibInfo, cfg) -> Generator:
    """Read a book, then update the text of one of its chapter summaries."""
    book_id = rng.choice(info.book_ids)
    book = yield from nm.get_element_by_id(txn, book_id)
    yield from _think(cfg, 1)
    if book is None:
        return
    entries = yield from nm.read_subtree(txn, book)
    yield from _think(cfg, len(entries))
    records = dict(entries)
    summaries = [
        splid for splid, record in entries
        if record.kind is NodeKind.TEXT
        and _parent_is(records, splid, "summary", nm)
    ]
    if not summaries:
        return
    target = rng.choice(summaries)
    yield from nm.update_content(
        txn, target, f"revised summary {rng.randrange(10_000)}"
    )
    yield from _think(cfg, 1)


def ta_del_book(nm: NodeManager, txn: Transaction, rng: random.Random,
                info: BibInfo, cfg) -> Generator:
    """Read a random topic's child list, then delete one book subtree."""
    topic_id = rng.choice(info.topic_ids)
    topic = yield from nm.get_element_by_id(txn, topic_id)
    yield from _think(cfg, 1)
    if topic is None:
        return
    books = yield from nm.get_child_nodes(txn, topic)
    yield from _think(cfg, len(books))
    if not books:
        return
    book = rng.choice(list(books))
    entries = yield from nm.read_subtree(txn, book)
    yield from _think(cfg, len(entries))
    yield from nm.delete_subtree(txn, book, access=Access.JUMP)
    yield from _think(cfg, 1)


def ta_lend_and_return(nm: NodeManager, txn: Transaction, rng: random.Random,
                       info: BibInfo, cfg) -> Generator:
    """Locate a book, walk into its history, and lend/return it."""
    book_id = rng.choice(info.book_ids)
    book = yield from nm.get_element_by_id(txn, book_id)
    yield from _think(cfg, 1)
    if book is None:
        return
    history = yield from nm.get_last_child(txn, book)
    yield from _think(cfg, 1)
    if history is None:
        return
    lends = yield from nm.get_child_nodes(txn, history)
    yield from _think(cfg, len(lends) + 1)
    if lends and rng.random() < 0.5:
        # Return: drop the oldest lend entry.
        yield from nm.delete_subtree(txn, lends[0])
        yield from _think(cfg, 1)
    # Lend: attach a new lend' subtree with person and return attributes.
    person = rng.choice(info.person_ids) if info.person_ids else "p0"
    yield from nm.insert_tree(
        txn,
        history,
        ("lend", {
            "person": person,
            "return": f"2006-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
        }, []),
    )
    yield from _think(cfg, 1)


def ta_rename_topic(nm: NodeManager, txn: Transaction, rng: random.Random,
                    info: BibInfo, cfg) -> Generator:
    """Locate a topic element by a random ID and rename it."""
    topic_id = rng.choice(info.topic_ids)
    topic = yield from nm.get_element_by_id(txn, topic_id)
    yield from _think(cfg, 1)
    if topic is None:
        return
    yield from nm.rename_element(txn, topic, rng.choice(_TOPIC_NAMES))
    yield from _think(cfg, 1)


def _parent_is(records, splid: Splid, name: str, nm: NodeManager) -> bool:
    """Is the text node's parent element called ``name``?"""
    parent = splid.parent
    if parent is None:
        return False
    record = records.get(parent)
    if record is None or record.kind is not NodeKind.ELEMENT:
        return False
    return nm.document.vocabulary.name_of(record.name_surrogate) == name


#: Transaction type registry (paper names -> programs).
TRANSACTION_TYPES: Dict[str, object] = {
    "TAqueryBook": ta_query_book,
    "TAchapter": ta_chapter,
    "TAdelBook": ta_del_book,
    "TAlendAndReturn": ta_lend_and_return,
    "TArenameTopic": ta_rename_topic,
}
