"""AST for the XPath subset (path expressions over stored documents).

Supported grammar (a pragmatic XPath 1.0 slice)::

    path       := ('id(' literal ')')? step*          (absolute otherwise)
    step       := ('/' | '//') test predicate*
                | '/@' name                            (final attribute step)
    test       := name | '*' | 'text()'
    predicate  := '[' integer ']'
                | '[' '@' name ('=' literal)? ']'
                | '[' name ('=' literal)? ']'
    literal    := "'" chars "'" | '"' chars '"'

Examples::

    /bib/topics/topic/book[@id='b3']/title/text()
    //book[author='Gray']/@year
    id('t0')//lend[@person='p7']
    /bib//book[2]
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple


class Axis(Enum):
    CHILD = "child"
    DESCENDANT = "descendant-or-self"
    ATTRIBUTE = "attribute"


class TestKind(Enum):
    __test__ = False       # not a pytest test class despite the name

    NAME = "name"          # element with a given tag name
    ANY = "any"            # *
    TEXT = "text"          # text()


@dataclass(frozen=True)
class NodeTest:
    kind: TestKind
    name: Optional[str] = None

    def __str__(self) -> str:
        if self.kind is TestKind.ANY:
            return "*"
        if self.kind is TestKind.TEXT:
            return "text()"
        return self.name or "?"


@dataclass(frozen=True)
class Predicate:
    """One filter: positional, attribute, or child-element comparison."""

    #: 1-based position among the step's matches, if positional.
    position: Optional[int] = None
    #: Attribute name (``@name`` forms).
    attribute: Optional[str] = None
    #: Child element name (``[title='x']`` forms).
    child: Optional[str] = None
    #: Comparison value; None means pure existence test.
    value: Optional[str] = None

    def __str__(self) -> str:
        if self.position is not None:
            return f"[{self.position}]"
        subject = f"@{self.attribute}" if self.attribute else self.child
        if self.value is None:
            return f"[{subject}]"
        return f"[{subject}='{self.value}']"


@dataclass(frozen=True)
class Step:
    axis: Axis
    test: NodeTest
    predicates: Tuple[Predicate, ...] = ()

    def __str__(self) -> str:
        prefix = "//" if self.axis is Axis.DESCENDANT else "/"
        if self.axis is Axis.ATTRIBUTE:
            return f"/@{self.test.name}"
        return prefix + str(self.test) + "".join(map(str, self.predicates))


@dataclass(frozen=True)
class Path:
    """A full path expression."""

    steps: Tuple[Step, ...]
    #: ``id('...')`` start point; None means the document root.
    id_start: Optional[str] = None

    def __str__(self) -> str:
        prefix = f"id('{self.id_start}')" if self.id_start else ""
        return prefix + "".join(str(step) for step in self.steps)
