"""Parser for the XPath subset (see :mod:`repro.query.ast` for the grammar)."""

from __future__ import annotations

import re
from typing import List, Optional

from repro.errors import ReproError
from repro.query.ast import Axis, NodeTest, Path, Predicate, Step, TestKind


class QueryError(ReproError):
    """Malformed path expression."""


_NAME = re.compile(r"[A-Za-z_][\w.-]*")


class _Cursor:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, probe: str) -> bool:
        return self.text.startswith(probe, self.pos)

    def take(self, probe: str) -> bool:
        if self.peek(probe):
            self.pos += len(probe)
            return True
        return False

    def expect(self, probe: str) -> None:
        if not self.take(probe):
            raise QueryError(
                f"expected {probe!r} at position {self.pos} in {self.text!r}"
            )

    def name(self) -> str:
        match = _NAME.match(self.text, self.pos)
        if match is None:
            raise QueryError(
                f"expected a name at position {self.pos} in {self.text!r}"
            )
        self.pos = match.end()
        return match.group(0)

    def literal(self) -> str:
        for quote in ("'", '"'):
            if self.take(quote):
                end = self.text.find(quote, self.pos)
                if end < 0:
                    raise QueryError(f"unterminated literal in {self.text!r}")
                value = self.text[self.pos:end]
                self.pos = end + 1
                return value
        raise QueryError(
            f"expected a quoted literal at position {self.pos} in {self.text!r}"
        )

    def integer(self) -> Optional[int]:
        match = re.compile(r"\d+").match(self.text, self.pos)
        if match is None:
            return None
        self.pos = match.end()
        return int(match.group(0))


def parse_path(text: str) -> Path:
    """Parse a path expression."""
    cursor = _Cursor(text.strip())
    id_start = None
    if cursor.take("id("):
        id_start = cursor.literal()
        cursor.expect(")")
    steps: List[Step] = []
    while not cursor.eof():
        steps.append(_parse_step(cursor))
    if not steps and id_start is None:
        raise QueryError("empty path expression")
    return Path(tuple(steps), id_start)


def _parse_step(cursor: _Cursor) -> Step:
    if cursor.take("//"):
        axis = Axis.DESCENDANT
    elif cursor.take("/"):
        axis = Axis.CHILD
    else:
        raise QueryError(
            f"expected '/' or '//' at position {cursor.pos} in {cursor.text!r}"
        )
    if cursor.take("@"):
        if axis is Axis.DESCENDANT:
            raise QueryError("'//@name' is not supported; use '/@name'")
        return Step(Axis.ATTRIBUTE, NodeTest(TestKind.NAME, cursor.name()))
    if cursor.take("*"):
        test = NodeTest(TestKind.ANY)
    elif cursor.peek("text()"):
        cursor.expect("text()")
        test = NodeTest(TestKind.TEXT)
    else:
        test = NodeTest(TestKind.NAME, cursor.name())
    predicates: List[Predicate] = []
    while cursor.take("["):
        predicates.append(_parse_predicate(cursor))
    return Step(axis, test, tuple(predicates))


def _parse_predicate(cursor: _Cursor) -> Predicate:
    position = cursor.integer()
    if position is not None:
        cursor.expect("]")
        if position < 1:
            raise QueryError("positions are 1-based")
        return Predicate(position=position)
    attribute = None
    child = None
    if cursor.take("@"):
        attribute = cursor.name()
    else:
        child = cursor.name()
    value = None
    if cursor.take("="):
        value = cursor.literal()
    cursor.expect("]")
    return Predicate(attribute=attribute, child=child, value=value)
