"""Declarative queries mapped to the navigational access model.

An XPath-1.0 subset evaluated through the node manager, so the active
lock protocol isolates query results exactly like navigation (Section 1
of the paper: declarative languages must map to navigation for
fine-granular concurrency control).
"""

from repro.query.ast import Axis, NodeTest, Path, Predicate, Step, TestKind
from repro.query.engine import QueryProcessor, evaluate_raw
from repro.query.parser import QueryError, parse_path

__all__ = [
    "Axis",
    "NodeTest",
    "Path",
    "Predicate",
    "QueryError",
    "QueryProcessor",
    "Step",
    "TestKind",
    "evaluate_raw",
    "parse_path",
]
