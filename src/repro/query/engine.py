"""Path evaluation: declarative queries on the navigational access model.

The paper's premise (Section 1): to get fine-granular concurrency control,
XQuery/XPath operations must be *mapped to a navigational access model*.
This engine does exactly that -- every path step becomes DOM-style node
manager operations (child enumeration, subtree reads, attribute access),
so the active lock protocol automatically isolates declarative queries
with the same granularity as navigation.

Two evaluators share the step semantics:

* :class:`QueryProcessor` -- transactional: a generator per query, driven
  by the simulator / threaded runtime / ``Database.run``; acquires locks
  through the node manager.
* :func:`evaluate_raw` -- direct evaluation against the raw document, for
  single-user use and as the test oracle for the locked evaluator.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.dom.document import Document
from repro.dom.node_manager import NodeManager
from repro.query.ast import Axis, Path, Predicate, Step, TestKind
from repro.query.parser import parse_path
from repro.splid import Splid
from repro.storage.record import NodeKind
from repro.txn.transaction import Transaction

Result = Union[List[Splid], List[str]]


def _as_path(query: Union[str, Path]) -> Path:
    return parse_path(query) if isinstance(query, str) else query


# ---------------------------------------------------------------------------
# transactional evaluation (locked, generator-based)
# ---------------------------------------------------------------------------

class QueryProcessor:
    """Evaluates path expressions through the lock-guarded node manager."""

    def __init__(self, nodes: NodeManager):
        self.nodes = nodes
        self.document = nodes.document

    def evaluate(self, txn: Transaction, query: Union[str, Path]):
        """Generator: evaluate ``query``; returns nodes or strings."""
        path = _as_path(query)
        steps = list(path.steps)
        if path.id_start is not None:
            node = yield from self.nodes.get_element_by_id(txn, path.id_start)
            context: List[Splid] = [] if node is None else [node]
        elif steps and steps[0].axis is Axis.CHILD and (
            steps[0].test.kind is TestKind.NAME
            and self.document.name_of(self.document.root) == steps[0].test.name
        ):
            # An absolute '/name' step addresses the root element itself.
            context = yield from self._filter(
                txn, [self.document.root], steps[0].predicates
            )
            steps = steps[1:]
        else:
            context = [self.document.root]
        for step in steps:
            if step.axis is Axis.ATTRIBUTE:
                values: List[str] = []
                for node in context:
                    value = yield from self.nodes.get_attribute_value(
                        txn, node, step.test.name
                    )
                    if value is not None:
                        values.append(value)
                return values
            if step.test.kind is TestKind.TEXT:
                texts: List[str] = []
                for node in context:
                    children = yield from self.nodes.get_child_nodes(txn, node)
                    for child in children:
                        if self.document.kind(child) is NodeKind.TEXT:
                            text = yield from self.nodes.read_content(txn, child)
                            texts.append(text)
                return texts
            context = yield from self._element_step(txn, context, step)
        return context

    # -- internals -----------------------------------------------------------

    def _element_step(self, txn, context, step: Step):
        matches: List[Splid] = []
        for node in context:
            if step.axis is Axis.DESCENDANT:
                entries = yield from self.nodes.read_subtree(txn, node)
                for splid, record in entries:
                    if record.kind is NodeKind.ELEMENT and self._test(
                        splid, step
                    ):
                        matches.append(splid)
            else:
                children = yield from self.nodes.get_child_nodes(txn, node)
                for child in children:
                    if self.document.kind(child) is NodeKind.ELEMENT and (
                        self._test(child, step)
                    ):
                        matches.append(child)
        return (yield from self._filter(txn, matches, step.predicates))

    def _test(self, node: Splid, step: Step) -> bool:
        if step.test.kind is TestKind.ANY:
            return True
        return self.document.name_of(node) == step.test.name

    def _filter(self, txn, nodes: Sequence[Splid],
                predicates: Sequence[Predicate]):
        current = list(nodes)
        for predicate in predicates:
            if predicate.position is not None:
                index = predicate.position - 1
                current = [current[index]] if index < len(current) else []
                continue
            kept: List[Splid] = []
            for node in current:
                ok = yield from self._check(txn, node, predicate)
                if ok:
                    kept.append(node)
            current = kept
        return current

    def _check(self, txn, node: Splid, predicate: Predicate):
        if predicate.attribute is not None:
            value = yield from self.nodes.get_attribute_value(
                txn, node, predicate.attribute
            )
            if predicate.value is None:
                return value is not None
            return value == predicate.value
        children = yield from self.nodes.get_child_nodes(txn, node)
        for child in children:
            if self.document.kind(child) is not NodeKind.ELEMENT:
                continue
            if self.document.name_of(child) != predicate.child:
                continue
            if predicate.value is None:
                return True
            text = yield from self._element_text(txn, child)
            if text == predicate.value:
                return True
        return False

    def _element_text(self, txn, element: Splid):
        parts: List[str] = []
        children = yield from self.nodes.get_child_nodes(txn, element)
        for child in children:
            if self.document.kind(child) is NodeKind.TEXT:
                text = yield from self.nodes.read_content(txn, child)
                parts.append(text)
        return "".join(parts)


# ---------------------------------------------------------------------------
# raw evaluation (single-user oracle)
# ---------------------------------------------------------------------------

def evaluate_raw(document: Document, query: Union[str, Path]) -> Result:
    """Evaluate without locking (test oracle / single-user convenience)."""
    path = _as_path(query)
    steps = list(path.steps)
    if path.id_start is not None:
        node = document.element_by_id(path.id_start)
        context: List[Splid] = [] if node is None else [node]
    elif steps and steps[0].axis is Axis.CHILD and (
        steps[0].test.kind is TestKind.NAME
        and document.name_of(document.root) == steps[0].test.name
    ):
        context = _filter_raw(document, [document.root], steps[0].predicates)
        steps = steps[1:]
    else:
        context = [document.root]

    for step in steps:
        if step.axis is Axis.ATTRIBUTE:
            return [
                value for node in context
                if (value := document.attribute_value(node, step.test.name))
                is not None
            ]
        if step.test.kind is TestKind.TEXT:
            return [
                document.string_value(child)
                for node in context
                for child in document.store.children(node)
                if document.kind(child) is NodeKind.TEXT
            ]
        matches: List[Splid] = []
        for node in context:
            if step.axis is Axis.DESCENDANT:
                candidates = [
                    splid for splid, record in document.store.subtree(node)
                    if record.kind is NodeKind.ELEMENT
                ]
            else:
                candidates = [
                    child for child in document.store.children(node)
                    if document.kind(child) is NodeKind.ELEMENT
                ]
            for candidate in candidates:
                if step.test.kind is TestKind.ANY or (
                    document.name_of(candidate) == step.test.name
                ):
                    matches.append(candidate)
        context = _filter_raw(document, matches, step.predicates)
    return context


def _filter_raw(document: Document, nodes: List[Splid],
                predicates: Sequence[Predicate]) -> List[Splid]:
    current = nodes
    for predicate in predicates:
        if predicate.position is not None:
            index = predicate.position - 1
            current = [current[index]] if index < len(current) else []
            continue
        current = [
            node for node in current
            if _check_raw(document, node, predicate)
        ]
    return current


def _check_raw(document: Document, node: Splid, predicate: Predicate) -> bool:
    if predicate.attribute is not None:
        value = document.attribute_value(node, predicate.attribute)
        if predicate.value is None:
            return value is not None
        return value == predicate.value
    for child in document.store.children(node):
        if document.kind(child) is not NodeKind.ELEMENT:
            continue
        if document.name_of(child) != predicate.child:
            continue
        if predicate.value is None:
            return True
        if document.text_of_element(child) == predicate.value:
            return True
    return False
