"""Lock modes, compatibility matrices, conversion matrices, mode algebra.

Every lock protocol is driven by a :class:`ModeTable`: the set of its lock
modes, a *compatibility* relation (may two transactions hold these modes on
the same resource?), and a *conversion* function (which single mode replaces
a held + requested pair -- the paper keeps one lock per transaction and
node, Section 2.3).

Conversions may carry a **child action**: the paper's subscripted results
such as ``CX[NR]`` (the paper's CX_NR) mean "take CX on the node and NR on
every direct child".  The lock manager surfaces the child mode to the node manager,
which enumerates the children (a real document access) and locks them --
this fan-out is exactly the cost the taDOM2+/taDOM3+ combination modes
avoid.

Tables can be written out explicitly (URIX from Figure 2, taDOM2 from
Figures 3a/4) or *derived*: each mode carries a set of abstract privileges
(its *coverage*), and the conversion of two modes is the least mode whose
coverage includes both -- falling back to distributing level/subtree read
privileges to the children when no single mode suffices.  The derived
taDOM2 matrix is checked cell-by-cell against the paper's Figure 4 in the
test suite, which validates the algebra before it is used to build the
extended taDOM2+/taDOM3/taDOM3+ tables the paper could not print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import LockError

# -- privileges --------------------------------------------------------------

#: Abstract privileges used for coverage-based conversion derivation.
#: ``*_read``/``*_write`` describe what the holder may do; ``intent_*``
#: announce operations deeper in the tree.
PRIVILEGES = (
    "intent_read",
    "node_read",
    "level_read",
    "subtree_read",
    "intent_write",
    "child_exclusive",
    "subtree_update",
    "subtree_write",
    "node_update",
    "node_write",
)

#: Privileges that can be pushed down to the direct children when no single
#: mode covers the union (LR -> NR per child, SR -> SR per child).
_DISTRIBUTABLE = frozenset({"level_read", "subtree_read"})

#: Privileges that make a mode a *write* mode (kept long under every
#: isolation level except NONE).  Lives here so :class:`ModeTable` can
#: classify its modes once at construction; the lock manager re-exports it.
WRITE_PRIVILEGES = frozenset(
    {
        "intent_write",
        "child_exclusive",
        "subtree_update",
        "subtree_write",
        "node_update",
        "node_write",
    }
)

#: A request needing no more than these is a plain node read -- the only
#: requests a *level* read anchor (LR on the parent) can cover.
_PURE_READ_PRIVILEGES = frozenset({"intent_read", "node_read"})


@dataclass(frozen=True)
class Conversion:
    """Result of converting a held lock against a new request."""

    result: str
    child_mode: Optional[str] = None

    @property
    def has_fanout(self) -> bool:
        return self.child_mode is not None

    def __str__(self) -> str:
        if self.child_mode is None:
            return self.result
        return f"{self.result}[{self.child_mode}]"


class ModeTable:
    """Lock modes with compatibility and conversion semantics."""

    def __init__(
        self,
        name: str,
        modes: Sequence[str],
        compatibility: Mapping[Tuple[str, str], bool],
        conversions: Mapping[Tuple[str, str], Conversion],
        coverage: Mapping[str, FrozenSet[str]],
    ):
        self.name = name
        self.modes: Tuple[str, ...] = tuple(modes)
        self._mode_set = frozenset(modes)
        self._compat = dict(compatibility)
        self._convert = dict(conversions)
        self.coverage = {m: frozenset(coverage[m]) for m in modes}
        self._validate()
        # Hot-path caches: the meta-sync front end classifies modes and
        # compares coverages on every lock request, so the frozenset
        # algebra is flattened into per-table lookups once, here.
        #: Modes whose coverage intersects :data:`WRITE_PRIVILEGES`.
        self.write_modes = frozenset(
            m for m in modes if self.coverage[m] & WRITE_PRIVILEGES
        )
        #: Modes that demand nothing beyond a plain node read.
        self.pure_read_modes = frozenset(
            m for m in modes if self.coverage[m] <= _PURE_READ_PRIVILEGES
        )
        #: ``(held, requested)`` pairs where held coverage subsumes the
        #: requested coverage (the transaction-local lock-cache test).
        self._subsumes = frozenset(
            (held, requested)
            for held in modes
            for requested in modes
            if self.coverage[requested] <= self.coverage[held]
        )
        #: mode -> (grants subtree_write, subtree_read, level_read): the
        #: coverage-cache anchor classification of every granted mode.
        self.anchor_flags = {
            m: (
                "subtree_write" in self.coverage[m],
                "subtree_read" in self.coverage[m],
                "level_read" in self.coverage[m],
            )
            for m in modes
        }
        self._build_flat_tables()

    def _build_flat_tables(self) -> None:
        """Flatten the dict-based matrices into integer tables.

        The grant path (``repro.locking``) works on mode *indices*: a
        compatibility probe is one shift-and-mask against a per-requested-
        mode bitmask of compatible held modes, and a conversion is two
        reads from flattened ``n x n`` arrays.  Strings survive only at
        the API boundary (``GrantResult.mode``, tickets, tracing).
        """
        modes = self.modes
        n = len(modes)
        #: Total mode count (row stride of the flattened matrices).
        self.mode_count = n
        #: mode name -> dense index (the order of :attr:`modes`).
        self.mode_index: Dict[str, int] = {m: i for i, m in enumerate(modes)}
        index = self.mode_index
        #: ``compat_mask[r]``: bit ``h`` set iff a *held* mode ``h`` is
        #: compatible with a new request for mode ``r`` (paper matrix
        #: orientation: row = held, column = requested).
        compat_mask = [0] * n
        for (held, requested), ok in self._compat.items():
            if ok:
                compat_mask[index[requested]] |= 1 << index[held]
        self.compat_mask = tuple(compat_mask)
        #: ``conv_result[h * n + r]`` / ``conv_child[h * n + r]``: the
        #: conversion matrix in index form; child is -1 when the cell has
        #: no fan-out.
        conv_result = [0] * (n * n)
        conv_child = [-1] * (n * n)
        for (held, requested), conv in self._convert.items():
            flat = index[held] * n + index[requested]
            conv_result[flat] = index[conv.result]
            if conv.child_mode is not None:
                conv_child[flat] = index[conv.child_mode]
        self.conv_result = tuple(conv_result)
        self.conv_child = tuple(conv_child)
        #: ``subsume_mask[h]``: bit ``r`` set iff holding ``h`` already
        #: grants everything a request for ``r`` needs.
        subsume_mask = [0] * n
        for held, requested in self._subsumes:
            subsume_mask[index[held]] |= 1 << index[requested]
        self.subsume_mask = tuple(subsume_mask)
        #: Bitmask forms of :attr:`write_modes` / :attr:`pure_read_modes`.
        self.write_mask = sum(1 << index[m] for m in self.write_modes)
        self.pure_read_mask = sum(1 << index[m] for m in self.pure_read_modes)
        #: :attr:`anchor_flags` in index order.
        self.anchor_flags_idx = tuple(self.anchor_flags[m] for m in modes)
        self.anchor_any_idx = tuple(any(self.anchor_flags[m]) for m in modes)
        #: Lock-escalation targets: the least mode granting a whole-subtree
        #: read / write (``None`` when the protocol has no subtree modes,
        #: which disables escalation for it).
        self.escalation_read_mode = _least_covering(
            modes, self.coverage, frozenset({"subtree_read"})
        )
        self.escalation_write_mode = _least_covering(
            modes, self.coverage, frozenset({"subtree_write"})
        )
        # Which requested modes have *monotone* coverage under this
        # table's lattice?  Bit r is set iff subsumption is reflexive for
        # r and every conversion away from a mode that subsumed r still
        # subsumes r.  For such a request, a lock that once covered it
        # keeps covering it for as long as the transaction releases
        # nothing -- conversions only widen coverage -- which lets the
        # lock manager memoize verified ancestor-chain prefixes (see
        # LockManager._batch_fast).  Not table-global on purpose: taDOM's
        # LR -> CX conversion legitimately drops level-read coverage, but
        # the intention modes used on ancestor paths stay monotone.
        mono = sum(1 << i for i in range(n) if (subsume_mask[i] >> i) & 1)
        for (held, _requested), conv in self._convert.items():
            held_covers = subsume_mask[index[held]]
            lost = held_covers & ~subsume_mask[index[conv.result]]
            mono &= ~lost
        self.chain_mono_mask = mono

    # -- queries -------------------------------------------------------------

    def __contains__(self, mode: str) -> bool:
        return mode in self._mode_set

    def compatible(self, held: str, requested: str) -> bool:
        """May ``requested`` (new transaction) join ``held`` (existing)?

        Matrix orientation follows the paper: row = held, column =
        requested.  Some paper matrices (URIX's U mode) are asymmetric.
        """
        try:
            return self._compat[(held, requested)]
        except KeyError:
            raise LockError(
                f"{self.name}: no compatibility for held={held}, "
                f"requested={requested}"
            ) from None

    def convert(self, held: str, requested: str) -> Conversion:
        """Single replacement mode for a transaction's held + new lock."""
        try:
            return self._convert[(held, requested)]
        except KeyError:
            raise LockError(
                f"{self.name}: no conversion for held={held}, "
                f"requested={requested}"
            ) from None

    def covers(self, mode: str, privileges: Iterable[str]) -> bool:
        return frozenset(privileges) <= self.coverage[mode]

    def subsumes(self, held: str, requested: str) -> bool:
        """Does holding ``held`` already grant everything ``requested``
        needs?  Precomputed for all mode pairs."""
        return (held, requested) in self._subsumes

    def is_write_mode(self, mode: str) -> bool:
        return mode in self.write_modes

    def is_upgrade(self, held: str, requested: str) -> bool:
        """True if the conversion result differs from the held mode."""
        return self.convert(held, requested).result != held

    def format_compatibility(self) -> str:
        """Render the compatibility matrix in the paper's +/- style."""
        width = max(len(mode) for mode in self.modes) + 1
        header = " " * width + "".join(f"{m:>{width}}" for m in self.modes)
        lines = [f"{self.name} compatibility (row = held, column = requested)",
                 header]
        for held in self.modes:
            cells = "".join(
                f"{'+' if self.compatible(held, req) else '-':>{width}}"
                for req in self.modes
            )
            lines.append(f"{held:<{width}}" + cells)
        return "\n".join(lines)

    def format_conversions(self) -> str:
        """Render the conversion matrix (RESULT[CHILD] for fan-outs)."""
        cell_width = max(
            len(str(self.convert(a, b)))
            for a in self.modes for b in self.modes
        ) + 1
        head_width = max(len(mode) for mode in self.modes) + 1
        header = " " * head_width + "".join(
            f"{m:>{cell_width}}" for m in self.modes
        )
        lines = [f"{self.name} conversion (held + requested -> replacement)",
                 header]
        for held in self.modes:
            cells = "".join(
                f"{str(self.convert(held, req)):>{cell_width}}"
                for req in self.modes
            )
            lines.append(f"{held:<{head_width}}" + cells)
        return "\n".join(lines)

    # -- internals -------------------------------------------------------------

    def _validate(self) -> None:
        for a in self.modes:
            for b in self.modes:
                if (a, b) not in self._compat:
                    raise LockError(f"{self.name}: missing compat ({a},{b})")
                if (a, b) not in self._convert:
                    raise LockError(f"{self.name}: missing conversion ({a},{b})")
        for (a, b), conv in self._convert.items():
            if conv.result not in self._mode_set:
                raise LockError(
                    f"{self.name}: conversion ({a},{b}) -> unknown {conv.result}"
                )
            if conv.child_mode is not None and conv.child_mode not in self._mode_set:
                raise LockError(
                    f"{self.name}: conversion ({a},{b}) -> unknown child mode "
                    f"{conv.child_mode}"
                )
        for mode, cover in self.coverage.items():
            unknown = cover - set(PRIVILEGES)
            if unknown:
                raise LockError(f"{self.name}: unknown privileges {unknown} in {mode}")


# -- construction helpers -------------------------------------------------------


def compat_from_rows(
    modes: Sequence[str], rows: Mapping[str, str]
) -> Dict[Tuple[str, str], bool]:
    """Parse a compatibility matrix written as '+'/'-' strings.

    ``rows[held]`` is a whitespace-separated string of '+'/'-' symbols, one
    per requested mode in ``modes`` order -- mirroring how the paper prints
    its matrices.
    """
    table: Dict[Tuple[str, str], bool] = {}
    for held in modes:
        symbols = rows[held].split()
        if len(symbols) != len(modes):
            raise LockError(f"row {held}: expected {len(modes)} entries")
        for requested, symbol in zip(modes, symbols):
            if symbol not in "+-":
                raise LockError(f"row {held}: bad symbol {symbol!r}")
            table[(held, requested)] = symbol == "+"
    return table


def conversions_from_rows(
    modes: Sequence[str], rows: Mapping[str, str]
) -> Dict[Tuple[str, str], Conversion]:
    """Parse a conversion matrix of mode names, ``RESULT[CHILD]`` for the
    paper's subscripted child-action cells (e.g. ``CX[NR]`` for CX_NR)."""
    table: Dict[Tuple[str, str], Conversion] = {}
    for held in modes:
        cells = rows[held].split()
        if len(cells) != len(modes):
            raise LockError(f"row {held}: expected {len(modes)} entries")
        for requested, cell in zip(modes, cells):
            if "[" in cell:
                result, child = cell[:-1].split("[")
                table[(held, requested)] = Conversion(result, child)
            else:
                table[(held, requested)] = Conversion(cell)
    return table


def derive_conversions(
    modes: Sequence[str],
    coverage: Mapping[str, FrozenSet[str]],
    *,
    overrides: Optional[Mapping[Tuple[str, str], Conversion]] = None,
) -> Dict[Tuple[str, str], Conversion]:
    """Derive the conversion matrix from mode coverage.

    Resolution order for held ``a`` + requested ``b`` with privilege union
    ``U = coverage[a] | coverage[b]``:

    1. a mode whose coverage is exactly ``U`` (no over-locking) -- e.g.
       NR + IX -> IX, or LR + IX -> LRIX when the combination mode exists;
    2. distribution: push the level/subtree-read privileges down to the
       children (NR or SR per child) if the rest of ``U`` is covered
       exactly -- the paper's CX_NR / IX_SR subscripted rules;
    3. the least mode covering all of ``U`` (a coarse jump such as
       SU + IX -> SX); no child action is needed since the result already
       covers the distributable privileges.
    """
    overrides = dict(overrides or {})
    result: Dict[Tuple[str, str], Conversion] = {}
    for a in modes:
        for b in modes:
            if (a, b) in overrides:
                result[(a, b)] = overrides[(a, b)]
                continue
            union = coverage[a] | coverage[b]
            exact = _exact_covering(modes, coverage, union)
            if exact is not None:
                result[(a, b)] = Conversion(exact)
                continue
            distributable = union & _DISTRIBUTABLE
            if distributable:
                remaining = union - _DISTRIBUTABLE
                node_mode = _exact_covering(modes, coverage, remaining)
                if node_mode is not None:
                    child_privs = (
                        frozenset({"intent_read", "node_read", "level_read",
                                   "subtree_read"})
                        if "subtree_read" in distributable
                        else frozenset({"intent_read", "node_read"})
                    )
                    child_mode = _least_covering(modes, coverage, child_privs)
                    if child_mode is None:
                        raise LockError(f"cannot derive child mode for ({a},{b})")
                    result[(a, b)] = Conversion(node_mode, child_mode)
                    continue
            coarse = _least_covering(modes, coverage, union)
            if coarse is None:
                raise LockError(f"cannot derive conversion ({a},{b})")
            result[(a, b)] = Conversion(coarse)
    return result


def _exact_covering(
    modes: Sequence[str],
    coverage: Mapping[str, FrozenSet[str]],
    privileges: FrozenSet[str],
) -> Optional[str]:
    for mode in modes:
        if coverage[mode] == privileges:
            return mode
    return None


def _least_covering(
    modes: Sequence[str],
    coverage: Mapping[str, FrozenSet[str]],
    privileges: FrozenSet[str],
) -> Optional[str]:
    best: Optional[str] = None
    for mode in modes:
        if privileges <= coverage[mode]:
            if best is None or len(coverage[mode]) < len(coverage[best]):
                best = mode
    return best


def extend_with_combinations(
    name: str,
    base_modes: Sequence[str],
    base_compat: Mapping[Tuple[str, str], bool],
    coverage: Mapping[str, FrozenSet[str]],
    combinations: Mapping[str, Tuple[str, str]],
    *,
    conversion_overrides: Optional[Mapping[Tuple[str, str], Conversion]] = None,
) -> ModeTable:
    """Build an extended table with combination modes (taDOM*+ family).

    A combination mode ``AB = (A, B)`` behaves like holding both parts:
    its coverage is the union, and it is compatible with ``m`` iff both
    parts are.  Conversions for the whole table are re-derived from
    coverage, so pairs such as held ``LR`` + requested ``IX`` now resolve
    to ``LRIX`` *without* a child fan-out.
    """
    parts: Dict[str, Tuple[str, ...]] = {m: (m,) for m in base_modes}
    full_coverage: Dict[str, FrozenSet[str]] = {
        m: frozenset(coverage[m]) for m in base_modes
    }
    for combo, (left, right) in combinations.items():
        if left not in parts or right not in parts:
            raise LockError(f"combination {combo} uses unknown parts")
        parts[combo] = (left, right)
        full_coverage[combo] = full_coverage[left] | full_coverage[right]
    modes = tuple(base_modes) + tuple(combinations)

    compat: Dict[Tuple[str, str], bool] = {}
    for a in modes:
        for b in modes:
            compat[(a, b)] = all(
                base_compat[(pa, pb)] for pa in parts[a] for pb in parts[b]
            )
    conversions = derive_conversions(
        modes, full_coverage, overrides=conversion_overrides
    )
    return ModeTable(name, modes, compat, conversions, full_coverage)
