"""The *-2PL protocol group (Section 2.1): Node2PL, NO2PL, OO2PL.

The group from the Natix work [13].  Common traits -- and the traits that
cost the group the contest:

* **no intention locks**: a direct jump is protected only by an IDR/IDX
  lock on the target, so the node manager must otherwise reach nodes by
  navigating from the document root, leaving locks on the path as it goes
  (Figure 1: read navigation "leaves T locks on its path from the root");
* **no subtree locks, no lock-depth parameter**: subtree reads visit every
  node (``traverses_subtrees``), locking step by step;
* **expensive subtree deletes**: nodes reached by jumps carry no path
  locks, so a deleter must scan the doomed subtree for every element
  owning an ID attribute and IDX-lock each one (``LockPlan.scan_ids``) --
  the behaviour that roughly doubles *-2PL execution time in CLUSTER2.

Variant granularities:

* **Node2PL** locks the *parent* of the context node (T to traverse, M to
  modify), blocking the entire level of the context node; T->M conversions
  on shared inner nodes are its dominant deadlock source.
* **NO2PL** refines the structure locks to plain node read/write locks
  (R2/W2) on the context node and, for updates, only the adjacent nodes.
* **OO2PL** locks only the traversed navigation edges (shared) and the
  affected edges (exclusive) -- the finest and best of the group, at the
  price of many more lock requests.
"""

from __future__ import annotations

from repro.core.protocol import (
    Access,
    CONTENT_SPACE,
    EDGE_SPACE,
    EdgeRole,
    ID_SPACE,
    LockPlan,
    LockProtocol,
    MetaOp,
    MetaRequest,
    NODE_SPACE,
    STRUCT_SPACE,
)
from repro.core.tables import (
    CONTENT2PL_TABLE,
    EDGE_TABLE,
    ID2PL_TABLE,
    NODE2PL_TABLE,
    STRUCT2PL_TABLE,
)
from repro.splid import Splid


class _Star2PL(LockProtocol):
    """Shared behaviour of the *-2PL group."""

    group = "*-2PL"
    supports_lock_depth = False
    requires_root_navigation = True
    traverses_subtrees = True

    def _jump_lock(self, plan: LockPlan, request: MetaRequest, exclusive: bool) -> None:
        """IDR/IDX protection for direct jumps (Figure 1, right).

        Locks are keyed by the *ID value*: a transaction jumping to an id
        must conflict with a deleter that IDX-scanned the doomed subtree
        even after the index entry is gone (the node manager issues the
        value-keyed IDR before resolving the index; this plan-side lock
        covers jumps whose target is already resolved).
        """
        if request.access is Access.JUMP and request.id_value is not None:
            plan.add(ID_SPACE, request.id_value, "IDX" if exclusive else "IDR")

    @staticmethod
    def _parent_of(target: Splid) -> Splid:
        parent = target.parent
        return parent if parent is not None else target


class Node2PL(_Star2PL):
    """Structure locks T/M on the parent of the context node."""

    name = "Node2PL"

    def tables(self) -> dict:
        return {
            STRUCT_SPACE: STRUCT2PL_TABLE,
            CONTENT_SPACE: CONTENT2PL_TABLE,
            ID_SPACE: ID2PL_TABLE,
        }

    def plan(self, request: MetaRequest, lock_depth: int) -> LockPlan:
        op = request.op
        target = request.target
        plan = LockPlan()

        if op in (MetaOp.READ_EDGE, MetaOp.WRITE_EDGE):
            # Edges are implicitly covered by the parent-level T/M locks.
            mode = "M" if op is MetaOp.WRITE_EDGE else "T"
            plan.add(STRUCT_SPACE, self._parent_of(target), mode)
            return plan

        if op is MetaOp.READ_NODE:
            self._jump_lock(plan, request, exclusive=False)
            plan.add(STRUCT_SPACE, self._parent_of(target), "T")
            return plan

        if op is MetaOp.READ_CONTENT:
            plan.add(CONTENT_SPACE, target, "S")
            return plan

        if op is MetaOp.READ_LEVEL:
            # T on the context node covers its entire child level.
            plan.add(STRUCT_SPACE, target, "T")
            return plan

        if op is MetaOp.READ_SUBTREE:
            plan.traverse_individually = True
            plan.add(STRUCT_SPACE, target, "T")
            return plan

        if op is MetaOp.UPDATE_NODE:
            plan.add(STRUCT_SPACE, self._parent_of(target), "T")
            return plan

        if op is MetaOp.WRITE_CONTENT:
            plan.add(STRUCT_SPACE, self._parent_of(target), "T")
            plan.add(CONTENT_SPACE, target, "X")
            return plan

        if op in (MetaOp.RENAME_NODE, MetaOp.INSERT_CHILD):
            # Modify lock on the parent: blocks the whole level.
            plan.add(STRUCT_SPACE, self._parent_of(target), "M")
            return plan

        if op is MetaOp.DELETE_SUBTREE:
            self._jump_lock(plan, request, exclusive=True)
            plan.add(STRUCT_SPACE, self._parent_of(target), "M")
            plan.scan_ids = target
            return plan

        raise AssertionError(f"unhandled meta op {op}")


class NO2PL(_Star2PL):
    """Node read/write locks on the context node and its neighbourhood."""

    name = "NO2PL"

    def tables(self) -> dict:
        return {
            NODE_SPACE: NODE2PL_TABLE,
            CONTENT_SPACE: CONTENT2PL_TABLE,
            ID_SPACE: ID2PL_TABLE,
        }

    def plan(self, request: MetaRequest, lock_depth: int) -> LockPlan:
        op = request.op
        target = request.target
        plan = LockPlan()

        if op in (MetaOp.READ_EDGE, MetaOp.WRITE_EDGE):
            mode = "W2" if op is MetaOp.WRITE_EDGE else "R2"
            plan.add(NODE_SPACE, target, mode)
            return plan

        if op is MetaOp.READ_NODE:
            self._jump_lock(plan, request, exclusive=False)
            plan.add(NODE_SPACE, target, "R2")
            return plan

        if op is MetaOp.READ_CONTENT:
            plan.add(NODE_SPACE, target, "R2")
            plan.add(CONTENT_SPACE, target, "S")
            return plan

        if op is MetaOp.READ_LEVEL:
            plan.add(NODE_SPACE, target, "R2")
            for child in request.children:
                plan.add(NODE_SPACE, child, "R2")
            return plan

        if op is MetaOp.READ_SUBTREE:
            plan.traverse_individually = True
            plan.add(NODE_SPACE, target, "R2")
            return plan

        if op is MetaOp.UPDATE_NODE:
            plan.add(NODE_SPACE, target, "R2")
            return plan

        if op is MetaOp.WRITE_CONTENT:
            plan.add(NODE_SPACE, target, "R2")
            plan.add(CONTENT_SPACE, target, "X")
            return plan

        if op is MetaOp.RENAME_NODE:
            plan.add(NODE_SPACE, target, "W2")
            return plan

        if op in (MetaOp.INSERT_CHILD, MetaOp.DELETE_SUBTREE):
            if op is MetaOp.DELETE_SUBTREE:
                self._jump_lock(plan, request, exclusive=True)
                plan.scan_ids = target
            plan.add(NODE_SPACE, target, "W2")
            for neighbour in request.affected:
                plan.add(NODE_SPACE, neighbour, "W2")
            return plan

        raise AssertionError(f"unhandled meta op {op}")


class OO2PL(_Star2PL):
    """Edge locks on traversed / affected navigation edges only."""

    name = "OO2PL"

    def tables(self) -> dict:
        return {
            EDGE_SPACE: EDGE_TABLE,
            CONTENT_SPACE: CONTENT2PL_TABLE,
            ID_SPACE: ID2PL_TABLE,
        }

    def plan(self, request: MetaRequest, lock_depth: int) -> LockPlan:
        op = request.op
        target = request.target
        plan = LockPlan()

        if op is MetaOp.READ_EDGE:
            plan.add(EDGE_SPACE, (target, request.role), "ER")
            return plan
        if op is MetaOp.WRITE_EDGE:
            plan.add(EDGE_SPACE, (target, request.role), "EX")
            return plan

        if op is MetaOp.READ_NODE:
            # Structure is protected by the traversed edges (requested per
            # navigation step); visiting the node itself reads its record,
            # which OO2PL can only protect with a shared content lock.
            self._jump_lock(plan, request, exclusive=False)
            plan.add(CONTENT_SPACE, target, "S")
            return plan

        if op is MetaOp.READ_CONTENT:
            plan.add(CONTENT_SPACE, target, "S")
            return plan

        if op is MetaOp.READ_LEVEL:
            plan.add(EDGE_SPACE, (target, EdgeRole.FIRST_CHILD), "ER")
            for child in request.children:
                plan.add(EDGE_SPACE, (child, EdgeRole.NEXT_SIBLING), "ER")
            return plan

        if op is MetaOp.READ_SUBTREE:
            plan.traverse_individually = True
            return plan

        if op is MetaOp.UPDATE_NODE:
            plan.add(CONTENT_SPACE, target, "S")
            return plan

        if op in (MetaOp.WRITE_CONTENT, MetaOp.RENAME_NODE):
            plan.add(CONTENT_SPACE, target, "X")
            return plan

        if op is MetaOp.INSERT_CHILD:
            plan.add(CONTENT_SPACE, target, "X")
            return plan

        if op is MetaOp.DELETE_SUBTREE:
            self._jump_lock(plan, request, exclusive=True)
            plan.add(CONTENT_SPACE, target, "X")
            plan.scan_ids = target
            return plan

        raise AssertionError(f"unhandled meta op {op}")


def node2pl() -> Node2PL:
    return Node2PL()


def no2pl() -> NO2PL:
    return NO2PL()


def oo2pl() -> OO2PL:
    return OO2PL()
