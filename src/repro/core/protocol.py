"""Meta-synchronization: abstract lock requests and the protocol interface.

Section 3.3: the XTC node manager does not know lock modes.  It issues
*meta-lock requests* -- node/level/subtree/edge locks in read, update, or
exclusive flavour plus a release policy -- and the pluggable
:class:`LockProtocol` maps each request onto concrete lock acquisitions.
Exchanging the protocol object exchanges the complete XML locking
mechanism, which is how the paper runs 11 protocols in one system.

A protocol's :meth:`LockProtocol.plan` returns a :class:`LockPlan`:

* ``steps`` -- concrete ``(lock space, resource, mode)`` acquisitions, in
  order (ancestor intention locks first, context lock last);
* ``traverse_individually`` -- the protocol has no subtree locks, so the
  node manager must visit the subtree node by node (the *-2PL group);
* ``scan_ids`` -- before a subtree delete the protocol needs IDX locks on
  every ID-owning element inside (the *-2PL group's expensive CLUSTER2
  behaviour: the scan runs through the node manager and may hit disk).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from repro.splid import Splid


class MetaOp(Enum):
    """The meta-lock request vocabulary of the node manager."""

    READ_NODE = "read_node"            # navigation / jump target read
    READ_CONTENT = "read_content"      # read a text/attribute value
    READ_LEVEL = "read_level"          # getChildNodes / getAttributes
    READ_SUBTREE = "read_subtree"      # getFragment, full subtree read
    UPDATE_NODE = "update_node"        # update intent (U-style lock)
    WRITE_CONTENT = "write_content"    # change a text/attribute value
    RENAME_NODE = "rename_node"        # DOM3 renameNode
    INSERT_CHILD = "insert_child"      # structural insert (target = new node)
    DELETE_SUBTREE = "delete_subtree"  # structural delete of a subtree
    READ_EDGE = "read_edge"            # traverse a navigation edge
    WRITE_EDGE = "write_edge"          # modify a navigation edge


#: Meta ops that only read; isolation levels *none*/*uncommitted* skip
#: their locks entirely, *committed* releases them at end of operation.
READ_OPS = frozenset(
    {
        MetaOp.READ_NODE,
        MetaOp.READ_CONTENT,
        MetaOp.READ_LEVEL,
        MetaOp.READ_SUBTREE,
        MetaOp.READ_EDGE,
    }
)


class EdgeRole(Enum):
    """The four logical navigation edges of Section 1."""

    FIRST_CHILD = "first_child"
    LAST_CHILD = "last_child"
    NEXT_SIBLING = "next_sibling"
    PREV_SIBLING = "prev_sibling"


class Access(Enum):
    """How the target node was reached -- the *-2PL group locks direct
    jumps (IDR/IDX) differently from navigated accesses (T-paths)."""

    NAVIGATION = "navigation"
    JUMP = "jump"


@dataclass(frozen=True, eq=False)
class MetaRequest:
    """One abstract lock request from the node manager."""

    op: MetaOp
    target: Splid
    access: Access = Access.NAVIGATION
    #: For edge requests: the edge (origin is ``target``, direction ``role``).
    role: Optional[EdgeRole] = None
    #: For READ_LEVEL: the children, so protocols without level locks can
    #: lock them individually (the fan-out taDOM's LR avoids).
    children: Tuple[Splid, ...] = ()
    #: For structural updates: the adjacent nodes whose neighbourhood
    #: changes (NO2PL locks exactly these).
    affected: Tuple[Splid, ...] = ()
    #: For direct jumps: the ID value used (IDR/IDX locks are keyed by
    #: value so they survive index-entry removal).
    id_value: Optional[str] = None

    # Hand-rolled equality/hash (same semantics as the dataclass pair):
    # requests key the lock manager's plan cache, so this runs on every
    # acquire.  Enum members compare by identity and the optional fields
    # are usually defaults, so the explicit short-circuit chain beats
    # building and comparing two 7-tuples.
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not MetaRequest:
            return NotImplemented
        return (self.op is other.op
                and self.access is other.access
                and self.role is other.role
                and self.id_value == other.id_value
                and self.target == other.target
                and self.children == other.children
                and self.affected == other.affected)

    def __hash__(self) -> int:
        # Intentionally coarse: op + target discriminate almost every
        # request in practice, and equal requests always share them.
        # The remaining fields are resolved by __eq__ on the rare
        # bucket collision.
        return hash((self.op, self.target))

    @property
    def is_read(self) -> bool:
        return self.op in READ_OPS


# -- lock plans --------------------------------------------------------------

#: Lock spaces: independent resource namespaces with their own tables.
NODE_SPACE = "node"
STRUCT_SPACE = "struct"
CONTENT_SPACE = "content"
ID_SPACE = "id"
EDGE_SPACE = "edge"
#: Key-range locks on the ID index (serializable isolation, taDOM* only).
ID_KEY_SPACE = "idkey"


@dataclass(frozen=True)
class LockStep:
    """One concrete lock acquisition."""

    space: str
    key: object            # Splid, or (Splid, EdgeRole) in the edge space
    mode: str

    def __str__(self) -> str:
        return f"{self.mode}({self.space}:{self.key})"


@dataclass
class LockPlan:
    """The concrete acquisitions answering one meta request."""

    steps: List[LockStep] = field(default_factory=list)
    #: Subtree ops must be decomposed into per-node visits (*-2PL group).
    traverse_individually: bool = False
    #: Root of the subtree that must be scanned for ID-owning elements,
    #: IDX-locking each, before a delete (*-2PL group).
    scan_ids: Optional[Splid] = None

    def add(self, space: str, key: object, mode: str) -> None:
        self.steps.append(LockStep(space, key, mode))


class LockProtocol(ABC):
    """One of the paper's 11 protocols: meta requests -> lock plans."""

    #: Protocol name as used in the paper's figures.
    name: str = "abstract"
    #: Group label: "*-2PL", "MGL*", or "taDOM*".
    group: str = "abstract"
    #: Whether the lock-depth parameter applies (all but Node2PL/NO2PL/OO2PL).
    supports_lock_depth: bool = True
    #: Protocols without intention locks cannot protect direct jumps along
    #: the ancestor path; their node manager must reach targets by
    #: navigating from the document root (the *-2PL group).
    requires_root_navigation: bool = False
    #: Protocols without subtree locks decompose subtree reads into
    #: per-node visits (the *-2PL group).
    traverses_subtrees: bool = False
    #: Only the taDOM* group offers isolation level serializable
    #: (footnote 1 of the paper).
    supports_serializable: bool = False

    @abstractmethod
    def tables(self) -> dict:
        """Mapping of lock space -> :class:`ModeTable` used by this protocol."""

    @abstractmethod
    def plan(self, request: MetaRequest, lock_depth: int) -> LockPlan:
        """Concrete acquisitions for ``request`` under ``lock_depth``."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"

    # -- shared helpers -------------------------------------------------------

    @staticmethod
    def anchored_target(target: Splid, lock_depth: int) -> Tuple[Splid, bool]:
        """Apply the lock-depth parameter (footnote 2 of the paper).

        Individual locks are acquired for nodes up to level ``lock_depth``;
        anything deeper is covered by a subtree lock at the level-``depth``
        ancestor.  Returns ``(anchor, escalated)``.
        """
        if target.level <= lock_depth:
            return target, False
        return target.ancestor_at_level(lock_depth), True

    @staticmethod
    def ancestor_path(node: Splid) -> Sequence[Splid]:
        """Ancestors from the document root down to the parent."""
        return node.ancestors_top_down()
