"""Protocol registry: name -> protocol factory for all 11 contestants."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import UnknownProtocolError
from repro.core.mgl import irix, irx, urix
from repro.core.node2pl import no2pl, node2pl, oo2pl
from repro.core.node2pla import node2pla
from repro.core.protocol import LockProtocol
from repro.core.tadom import tadom2, tadom2_plus, tadom3, tadom3_plus

_FACTORIES: Dict[str, Callable[[], LockProtocol]] = {
    # *-2PL group
    "Node2PL": node2pl,
    "NO2PL": no2pl,
    "OO2PL": oo2pl,
    "Node2PLa": node2pla,
    # MGL* group
    "IRX": irx,
    "IRIX": irix,
    "URIX": urix,
    # taDOM* group
    "taDOM2": tadom2,
    "taDOM2+": tadom2_plus,
    "taDOM3": tadom3,
    "taDOM3+": tadom3_plus,
}

#: The paper's canonical protocol order (Figures 8, 9, 11).
ALL_PROTOCOLS: Tuple[str, ...] = tuple(_FACTORIES)

#: Protocols grouped as in the paper's synopsis (Figure 9).
GROUPS: Dict[str, Tuple[str, ...]] = {
    "*-2PL": ("Node2PL", "NO2PL", "OO2PL", "Node2PLa"),
    "MGL*": ("IRX", "IRIX", "URIX"),
    "taDOM*": ("taDOM2", "taDOM2+", "taDOM3", "taDOM3+"),
}

def get_protocol(name: str) -> LockProtocol:
    """Instantiate a protocol by its paper name (e.g. ``"taDOM3+"``)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(_FACTORIES)
        raise UnknownProtocolError(
            f"unknown protocol {name!r}; known protocols: {known}"
        ) from None
    return factory()


def protocol_names() -> List[str]:
    return list(_FACTORIES)


def depth_aware_protocols() -> List[str]:
    """Protocols with a lock-depth parameter (all but Node2PL/NO2PL/OO2PL)."""
    return [name for name in _FACTORIES if get_protocol(name).supports_lock_depth]


def group_of(name: str) -> str:
    for group, members in GROUPS.items():
        if name in members:
            return group
    raise UnknownProtocolError(f"unknown protocol {name!r}")
