"""The concrete mode tables of all 11 protocols.

* ``TADOM2_TABLE`` -- exactly Figures 3a (compatibility) and 4 (conversion)
  of the paper, including the subscripted child-action rules.
* ``URIX_TABLE`` -- exactly Figure 2 (note the paper's asymmetric U row).
* ``IRIX_TABLE`` / ``IRX_TABLE`` -- the simpler MGL variants described in
  Section 2.2 (IRIX without RIX/U must convert R+IX straight to X; IRX
  collapses both intention modes into one general I).
* ``TADOM2P_TABLE`` / ``TADOM3_TABLE`` / ``TADOM3P_TABLE`` -- reconstructed
  per Section 2.3: taDOM2+ adds the four combination modes LRIX/LRCX/
  SRIX/SRCX; taDOM3 adds the DOM3 node-rename modes NU/NX and splits the
  IR/NR compatibilities (footnote 3); taDOM3+ has 20 node modes.
* ``*-2PL`` tables -- the structure (T/M), content (S/X) and direct-jump
  (IDR/IDX) lock types of Figure 1, plus node (R2/W2) and edge locks for
  NO2PL/OO2PL.
* ``EDGE_TABLE`` -- the three edge modes (shared/update/exclusive) used by
  URIX and the taDOM* group.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.modes import (
    ModeTable,
    compat_from_rows,
    conversions_from_rows,
    derive_conversions,
    extend_with_combinations,
)

# ---------------------------------------------------------------------------
# taDOM2: Figures 3a and 4, verbatim.
# ---------------------------------------------------------------------------

TADOM2_MODES = ("IR", "NR", "LR", "SR", "IX", "CX", "SU", "SX")

#: Figure 3a.  Row = held, column = requested.
_TADOM2_COMPAT_ROWS = {
    #       IR NR LR SR IX CX SU SX
    "IR": "+  +  +  +  +  +  -  -",
    "NR": "+  +  +  +  +  +  -  -",
    "LR": "+  +  +  +  +  -  -  -",
    "SR": "+  +  +  +  -  -  -  -",
    "IX": "+  +  +  -  +  +  -  -",
    "CX": "+  +  -  -  +  +  -  -",
    "SU": "+  +  +  +  -  -  -  -",
    "SX": "-  -  -  -  -  -  -  -",
}

#: Figure 4.  RESULT[CHILD] encodes the subscripted child-action cells.
_TADOM2_CONVERT_ROWS = {
    #       IR  NR  LR  SR  IX      CX      SU  SX
    "IR": "IR  NR  LR  SR  IX      CX      SU  SX",
    "NR": "NR  NR  LR  SR  IX      CX      SU  SX",
    "LR": "LR  LR  LR  SR  IX[NR]  CX[NR]  SU  SX",
    "SR": "SR  SR  SR  SR  IX[SR]  CX[SR]  SR  SX",
    "IX": "IX  IX  IX[NR]  IX[SR]  IX  CX  SX  SX",
    "CX": "CX  CX  CX[NR]  CX[SR]  CX  CX  SX  SX",
    "SU": "SU  SU  SU  SU  SX      SX      SU  SX",
    "SX": "SX  SX  SX  SX  SX      SX      SX  SX",
}

#: Coverage sets used to *derive* conversion matrices.  The derived taDOM2
#: matrix is asserted equal to Figure 4 in the tests (sole exception:
#: the paper's (SR, SU) -> SR cell, which the derivation reads as SU).
TADOM2_COVERAGE: Dict[str, FrozenSet[str]] = {
    "IR": frozenset({"intent_read"}),
    "NR": frozenset({"intent_read", "node_read"}),
    "LR": frozenset({"intent_read", "node_read", "level_read"}),
    "SR": frozenset({"intent_read", "node_read", "level_read", "subtree_read"}),
    "IX": frozenset({"intent_read", "node_read", "intent_write"}),
    "CX": frozenset({"intent_read", "node_read", "intent_write",
                     "child_exclusive"}),
    "SU": frozenset({"intent_read", "node_read", "level_read", "subtree_read",
                     "subtree_update"}),
    "SX": frozenset({"intent_read", "node_read", "level_read", "subtree_read",
                     "intent_write", "child_exclusive", "subtree_update",
                     "subtree_write", "node_update", "node_write"}),
}

TADOM2_TABLE = ModeTable(
    "taDOM2",
    TADOM2_MODES,
    compat_from_rows(TADOM2_MODES, _TADOM2_COMPAT_ROWS),
    conversions_from_rows(TADOM2_MODES, _TADOM2_CONVERT_ROWS),
    TADOM2_COVERAGE,
)

# ---------------------------------------------------------------------------
# taDOM2+: the four combination modes avoiding conversion fan-out.
# ---------------------------------------------------------------------------

_TADOM2_BASE_COMPAT = compat_from_rows(TADOM2_MODES, _TADOM2_COMPAT_ROWS)

TADOM2P_TABLE = extend_with_combinations(
    "taDOM2+",
    TADOM2_MODES,
    _TADOM2_BASE_COMPAT,
    TADOM2_COVERAGE,
    {
        "LRIX": ("LR", "IX"),
        "LRCX": ("LR", "CX"),
        "SRIX": ("SR", "IX"),
        "SRCX": ("SR", "CX"),
    },
)

# ---------------------------------------------------------------------------
# taDOM3: DOM3 rename support (NU/NX) and the IR/NR split of footnote 3.
# ---------------------------------------------------------------------------

TADOM3_MODES = ("IR", "NR", "NU", "NX", "LR", "SR", "IX", "CX", "SU", "SX")

#: Reconstructed compatibility matrix.  It restricts to Figure 3a on the
#: eight taDOM2 modes except for the footnote-3 refinement: IR is now a
#: *pure* intention (does not read the node), so IR/NX are compatible while
#: NR/NX are not.  IX and CX keep their double role (they read the node
#: they sit on), hence they too conflict with NX.  NU follows the
#: update-mode pattern (compatible with all readers, incompatible with
#: other updaters/writers).
_TADOM3_COMPAT_ROWS = {
    #       IR NR NU NX LR SR IX CX SU SX
    "IR": "+  +  +  +  +  +  +  +  -  -",
    "NR": "+  +  +  -  +  +  +  +  -  -",
    "NU": "+  +  -  -  +  +  +  +  -  -",
    "NX": "+  -  -  -  -  -  -  -  -  -",
    "LR": "+  +  +  -  +  +  +  -  -  -",
    "SR": "+  +  +  -  +  +  -  -  -  -",
    "IX": "+  +  +  -  +  -  +  +  -  -",
    "CX": "+  +  +  -  -  -  +  +  -  -",
    "SU": "+  +  -  -  +  +  -  -  -  -",
    "SX": "-  -  -  -  -  -  -  -  -  -",
}

TADOM3_COVERAGE: Dict[str, FrozenSet[str]] = {
    **TADOM2_COVERAGE,
    "NU": frozenset({"intent_read", "node_read", "node_update"}),
    "NX": frozenset({"intent_read", "node_read", "node_update", "node_write"}),
}

TADOM3_TABLE = ModeTable(
    "taDOM3",
    TADOM3_MODES,
    compat_from_rows(TADOM3_MODES, _TADOM3_COMPAT_ROWS),
    derive_conversions(TADOM3_MODES, TADOM3_COVERAGE),
    TADOM3_COVERAGE,
)

# ---------------------------------------------------------------------------
# taDOM3+: 20 node modes (taDOM3 + ten combination modes).
# ---------------------------------------------------------------------------

TADOM3P_TABLE = extend_with_combinations(
    "taDOM3+",
    TADOM3_MODES,
    compat_from_rows(TADOM3_MODES, _TADOM3_COMPAT_ROWS),
    TADOM3_COVERAGE,
    {
        "LRIX": ("LR", "IX"),
        "LRCX": ("LR", "CX"),
        "SRIX": ("SR", "IX"),
        "SRCX": ("SR", "CX"),
        "LRNU": ("LR", "NU"),
        "SRNU": ("SR", "NU"),
        "LRNX": ("LR", "NX"),
        "SRNX": ("SR", "NX"),
        "NUIX": ("NU", "IX"),
        "NXCX": ("NX", "CX"),
    },
)

# ---------------------------------------------------------------------------
# MGL* group.
# ---------------------------------------------------------------------------

#: URIX -- Figure 2 of the paper, verbatim (including the asymmetric U).
URIX_MODES = ("IR", "IX", "R", "RIX", "U", "X")

_URIX_COMPAT_ROWS = {
    #        IR IX R  RIX U  X
    "IR":  "+  +  +  +  -  -",
    "IX":  "+  +  -  -  -  -",
    "R":   "+  -  +  -  -  -",
    "RIX": "+  -  -  -  -  -",
    "U":   "+  -  +  -  -  -",
    "X":   "-  -  -  -  -  -",
}

_URIX_CONVERT_ROWS = {
    #        IR   IX   R    RIX  U  X
    "IR":  "IR   IX   R    RIX  U  X",
    "IX":  "IX   IX   RIX  RIX  X  X",
    "R":   "R    RIX  R    RIX  R  X",
    "RIX": "RIX  RIX  RIX  RIX  X  X",
    "U":   "U    X    U    X    U  X",
    "X":   "X    X    X    X    X  X",
}

#: MGL coverage: R and X are *subtree* locks; the intention modes double as
#: node locks ("the double role of intention locks", Section 2.2).
URIX_COVERAGE: Dict[str, FrozenSet[str]] = {
    "IR": frozenset({"intent_read", "node_read"}),
    "IX": frozenset({"intent_read", "node_read", "intent_write"}),
    "R": frozenset({"intent_read", "node_read", "level_read", "subtree_read"}),
    "RIX": frozenset({"intent_read", "node_read", "level_read", "subtree_read",
                      "intent_write"}),
    "U": frozenset({"intent_read", "node_read", "level_read", "subtree_read",
                    "subtree_update"}),
    "X": frozenset({"intent_read", "node_read", "level_read", "subtree_read",
                    "intent_write", "child_exclusive", "subtree_update",
                    "subtree_write", "node_update", "node_write"}),
}

URIX_TABLE = ModeTable(
    "URIX",
    URIX_MODES,
    compat_from_rows(URIX_MODES, _URIX_COMPAT_ROWS),
    conversions_from_rows(URIX_MODES, _URIX_CONVERT_ROWS),
    URIX_COVERAGE,
)

#: IRIX -- separate read/write intentions but no RIX and no U: the held-R +
#: requested-IX conversion has nowhere to go but X (its key weakness).
IRIX_MODES = ("IR", "IX", "R", "X")

_IRIX_COMPAT_ROWS = {
    #        IR IX R  X
    "IR":  "+  +  +  -",
    "IX":  "+  +  -  -",
    "R":   "+  -  +  -",
    "X":   "-  -  -  -",
}

_IRIX_CONVERT_ROWS = {
    #        IR  IX  R  X
    "IR":  "IR  IX  R  X",
    "IX":  "IX  IX  X  X",
    "R":   "R   X   R  X",
    "X":   "X   X   X  X",
}

IRIX_COVERAGE = {mode: URIX_COVERAGE[mode] for mode in IRIX_MODES}

IRIX_TABLE = ModeTable(
    "IRIX",
    IRIX_MODES,
    compat_from_rows(IRIX_MODES, _IRIX_COMPAT_ROWS),
    conversions_from_rows(IRIX_MODES, _IRIX_CONVERT_ROWS),
    IRIX_COVERAGE,
)

#: IRX -- one general intention mode I.  Because I announces *any* deeper
#: operation it must conflict with subtree reads, but transactions that
#: read first and write later need no path conversions at all.
IRX_MODES = ("I", "R", "X")

_IRX_COMPAT_ROWS = {
    #       I  R  X
    "I":  "+  -  -",
    "R":  "-  +  -",
    "X":  "-  -  -",
}

#: The general intention I may hide *write* intent, so a held I combined
#: with a subtree-read request (or vice versa) must escalate to X: there is
#: no RIX-like mode to remember "reads the subtree, writes below".  This is
#: the IRX counterpart of IRIX's R+IX -> X weakness.
_IRX_CONVERT_ROWS = {
    #       I  R  X
    "I":  "I  X  X",
    "R":  "X  R  X",
    "X":  "X  X  X",
}

IRX_COVERAGE: Dict[str, FrozenSet[str]] = {
    "I": frozenset({"intent_read", "node_read", "intent_write"}),
    "R": URIX_COVERAGE["R"],
    "X": URIX_COVERAGE["X"],
}

IRX_TABLE = ModeTable(
    "IRX",
    IRX_MODES,
    compat_from_rows(IRX_MODES, _IRX_COMPAT_ROWS),
    conversions_from_rows(IRX_MODES, _IRX_CONVERT_ROWS),
    IRX_COVERAGE,
)

# ---------------------------------------------------------------------------
# *-2PL group (Figure 1): three independent lock types.
# ---------------------------------------------------------------------------

#: Structure locks on nodes: T (traverse) / M (modify).
STRUCT2PL_MODES = ("T", "M")

STRUCT2PL_TABLE = ModeTable(
    "2PL-structure",
    STRUCT2PL_MODES,
    compat_from_rows(STRUCT2PL_MODES, {"T": "+  -", "M": "-  -"}),
    conversions_from_rows(STRUCT2PL_MODES, {"T": "T  M", "M": "M  M"}),
    {
        "T": frozenset({"node_read", "level_read"}),
        "M": frozenset({"node_read", "level_read", "node_write"}),
    },
)

#: Content locks on text/attribute values: S / X.
CONTENT2PL_MODES = ("S", "X")

CONTENT2PL_TABLE = ModeTable(
    "2PL-content",
    CONTENT2PL_MODES,
    compat_from_rows(CONTENT2PL_MODES, {"S": "+  -", "X": "-  -"}),
    conversions_from_rows(CONTENT2PL_MODES, {"S": "S  X", "X": "X  X"}),
    {
        "S": frozenset({"node_read"}),
        "X": frozenset({"node_read", "node_write"}),
    },
)

#: Locks for direct jumps via ID attributes: IDR / IDX.
ID2PL_MODES = ("IDR", "IDX")

ID2PL_TABLE = ModeTable(
    "2PL-id",
    ID2PL_MODES,
    compat_from_rows(ID2PL_MODES, {"IDR": "+  -", "IDX": "-  -"}),
    conversions_from_rows(ID2PL_MODES, {"IDR": "IDR  IDX", "IDX": "IDX  IDX"}),
    {
        "IDR": frozenset({"node_read"}),
        "IDX": frozenset({"node_read", "node_write"}),
    },
)

#: Plain node read/write locks (NO2PL's per-node neighbourhood locks).
NODE2PL_MODES = ("R2", "W2")

NODE2PL_TABLE = ModeTable(
    "2PL-node",
    NODE2PL_MODES,
    compat_from_rows(NODE2PL_MODES, {"R2": "+  -", "W2": "-  -"}),
    conversions_from_rows(NODE2PL_MODES, {"R2": "R2  W2", "W2": "W2  W2"}),
    {
        "R2": frozenset({"node_read"}),
        "W2": frozenset({"node_read", "node_write"}),
    },
)

# ---------------------------------------------------------------------------
# Edge locks (three modes) -- URIX "special edge locks" and taDOM*.
# ---------------------------------------------------------------------------

EDGE_MODES = ("ER", "EU", "EX")

_EDGE_COMPAT_ROWS = {
    #        ER EU EX
    "ER":  "+  +  -",
    "EU":  "+  -  -",
    "EX":  "-  -  -",
}

_EDGE_CONVERT_ROWS = {
    #        ER  EU  EX
    "ER":  "ER  EU  EX",
    "EU":  "EU  EU  EX",
    "EX":  "EX  EX  EX",
}

EDGE_TABLE = ModeTable(
    "edge",
    EDGE_MODES,
    compat_from_rows(EDGE_MODES, _EDGE_COMPAT_ROWS),
    conversions_from_rows(EDGE_MODES, _EDGE_CONVERT_ROWS),
    {
        "ER": frozenset({"node_read"}),
        "EU": frozenset({"node_read", "node_update"}),
        "EX": frozenset({"node_read", "node_update", "node_write"}),
    },
)

# ---------------------------------------------------------------------------
# Key-range locks on the ID index (serializable isolation, footnote 1).
# ---------------------------------------------------------------------------

ID_KEY_MODES = ("S", "X")

ID_KEY_TABLE = ModeTable(
    "id-key",
    ID_KEY_MODES,
    compat_from_rows(ID_KEY_MODES, {"S": "+  -", "X": "-  -"}),
    conversions_from_rows(ID_KEY_MODES, {"S": "S  X", "X": "X  X"}),
    {
        "S": frozenset({"node_read"}),
        "X": frozenset({"node_read", "node_write"}),
    },
)
