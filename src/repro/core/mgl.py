"""The MGL* protocol group (Section 2.2): IRX, IRIX, URIX.

Classical multi-granularity locking adapted to XML trees.  Two adaptations
from the paper: intention locks play a *double role* (they announce
operations deeper in the tree **and** lock the node itself, without its
subtree), and a lock-depth parameter escalates accesses below level *n*
into R/U/X subtree locks at the level-*n* ancestor.

Variant differences:

* **IRX** has a single general intention mode ``I``.  Transactions that
  read first and write later never convert their path locks (``I``
  already announces both), which removes a whole class of conversion
  blocking -- at the price of ``I`` conflicting with subtree ``R``.
* **IRIX** separates IR/IX but has neither RIX nor U: a held ``R`` +
  requested ``IX`` on the same node must convert straight to ``X``.
* **URIX** adds RIX and U (Figure 2 matrices, verbatim) and is the only
  MGL variant with the special edge locks of [12].

Because MGL has no *level* locks, ``getChildNodes`` either locks every
child individually (fan-out, at levels within lock depth) or takes an R
subtree lock on the context node (over-locking) -- the very contrast to
taDOM's LR that the paper highlights.
"""

from __future__ import annotations

from repro.core.modes import ModeTable
from repro.core.protocol import (
    EDGE_SPACE,
    LockPlan,
    LockProtocol,
    MetaOp,
    MetaRequest,
    NODE_SPACE,
)
from repro.core.tables import EDGE_TABLE, IRIX_TABLE, IRX_TABLE, URIX_TABLE
from repro.splid import Splid


class MglProtocol(LockProtocol):
    """Planner shared by IRX, IRIX, and URIX."""

    group = "MGL*"
    supports_lock_depth = True

    def __init__(
        self,
        name: str,
        table: ModeTable,
        *,
        intent_read: str,
        intent_write: str,
        update_mode: str,
        edge_locks: bool,
    ):
        self.name = name
        self.node_table = table
        self.intent_read = intent_read
        self.intent_write = intent_write
        self.update_mode = update_mode
        self.edge_locks = edge_locks

    def tables(self) -> dict:
        tables = {NODE_SPACE: self.node_table}
        if self.edge_locks:
            tables[EDGE_SPACE] = EDGE_TABLE
        return tables

    # -- planning ------------------------------------------------------------

    def plan(self, request: MetaRequest, lock_depth: int) -> LockPlan:
        op = request.op
        target = request.target
        plan = LockPlan()

        if op is MetaOp.READ_EDGE:
            if self.edge_locks:
                plan.add(EDGE_SPACE, (target, request.role), "ER")
            return plan
        if op is MetaOp.WRITE_EDGE:
            if self.edge_locks:
                plan.add(EDGE_SPACE, (target, request.role), "EX")
            return plan

        anchor, escalated = self.anchored_target(target, lock_depth)

        if op in (MetaOp.READ_NODE, MetaOp.READ_CONTENT):
            self._path(plan, anchor, self.intent_read)
            # Double role: the intention lock is also the node-read lock.
            plan.add(NODE_SPACE, anchor, "R" if escalated else self.intent_read)
            return plan

        if op is MetaOp.READ_LEVEL:
            self._path(plan, anchor, self.intent_read)
            if escalated or target.level + 1 > lock_depth:
                # Children lie below the depth cap: R subtree on the anchor.
                plan.add(NODE_SPACE, anchor, "R")
            else:
                # No level locks in MGL: one lock per child (the fan-out).
                plan.add(NODE_SPACE, anchor, self.intent_read)
                for child in request.children:
                    plan.add(NODE_SPACE, child, self.intent_read)
                if self.edge_locks:
                    # The edge locks complementing URIX ([12]): protect
                    # the traversed child chain against phantom inserts
                    # (the per-child IR locks cover nodes, not the list).
                    from repro.core.protocol import EdgeRole

                    plan.add(EDGE_SPACE, (anchor, EdgeRole.FIRST_CHILD), "ER")
                    for child in request.children:
                        plan.add(
                            EDGE_SPACE, (child, EdgeRole.NEXT_SIBLING), "ER"
                        )
            return plan

        if op is MetaOp.READ_SUBTREE:
            self._path(plan, anchor, self.intent_read)
            plan.add(NODE_SPACE, anchor, "R")
            return plan

        if op is MetaOp.UPDATE_NODE:
            self._path(plan, anchor, self.intent_read)
            plan.add(NODE_SPACE, anchor, self.update_mode)
            return plan

        if op in (
            MetaOp.WRITE_CONTENT,
            MetaOp.RENAME_NODE,
            MetaOp.INSERT_CHILD,
            MetaOp.DELETE_SUBTREE,
        ):
            # MGL cannot separate a node's name or content from its
            # subtree: every write is an X subtree lock on the target
            # (renames of wide inner nodes are therefore disastrous).
            self._path(plan, anchor, self.intent_write)
            plan.add(NODE_SPACE, anchor, "X")
            return plan

        raise AssertionError(f"unhandled meta op {op}")

    @staticmethod
    def _path(plan: LockPlan, context: Splid, mode: str) -> None:
        for ancestor in context.ancestors_top_down():
            plan.add(NODE_SPACE, ancestor, mode)


def irx() -> MglProtocol:
    # Edge locks come with the meta-synchronization interface (Section
    # 3.3 lists them among the meta-lock requests): without them a
    # protocol cannot "isolate the edges traversed to guarantee identical
    # navigation paths" (Section 2), so IRX and IRIX use the same edge
    # table as URIX; URIX's "special edge locks" remain the paper's
    # attribution of their origin ([12]).
    return MglProtocol(
        "IRX", IRX_TABLE,
        intent_read="I", intent_write="I", update_mode="R", edge_locks=True,
    )


def irix() -> MglProtocol:
    return MglProtocol(
        "IRIX", IRIX_TABLE,
        intent_read="IR", intent_write="IX", update_mode="R", edge_locks=True,
    )


def urix() -> MglProtocol:
    return MglProtocol(
        "URIX", URIX_TABLE,
        intent_read="IR", intent_write="IX", update_mode="U", edge_locks=True,
    )
