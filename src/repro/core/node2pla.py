"""Node2PLa: the paper's optimized *-2PL representative (Section 2.2).

"To optimize a protocol of the *-2PL group and to make it comparable to
all other protocols explored, we have added the concept of intention locks
borrowed from URIX with which the ancestor path to nodes accessed by
direct jumps were protected.  Furthermore, we have integrated a parameter
for lock depth which, in turn, implied the introduction of subtree locks.
Because the resulting protocol focuses on the parent of the context node,
we called it Node2PLa."

Concretely: Node2PLa uses the URIX mode table, but every operation anchors
its context lock at the **parent** of the context node (further capped by
the lock-depth parameter).  Reads take R (a subtree lock in MGL) on that
parent, updates/writes take U/X there -- so the protocol always "reacts a
level deeper" than URIX, and a rename of a topic element exclusively locks
the *topics* level, which is why it fails almost completely on
TArenameTopic (Figure 10d).

Direct jumps are protected by the borrowed intention locks, so Node2PLa
needs no IDX subtree scans (fast CLUSTER2 deletes, unlike its group).
"""

from __future__ import annotations

from repro.core.protocol import (
    LockPlan,
    LockProtocol,
    MetaOp,
    MetaRequest,
    NODE_SPACE,
)
from repro.core.tables import URIX_TABLE
from repro.splid import Splid


class Node2PLa(LockProtocol):
    """URIX machinery anchored at the parent of the context node."""

    name = "Node2PLa"
    group = "*-2PL"
    supports_lock_depth = True

    node_table = URIX_TABLE

    def tables(self) -> dict:
        return {NODE_SPACE: self.node_table}

    def plan(self, request: MetaRequest, lock_depth: int) -> LockPlan:
        op = request.op
        plan = LockPlan()

        if op in (MetaOp.READ_EDGE, MetaOp.WRITE_EDGE):
            # No edge locks: adjacency is covered by the parent anchoring.
            return plan

        if op in (MetaOp.READ_NODE, MetaOp.READ_CONTENT):
            # Reads use the borrowed URIX discipline: the intention locks
            # on the path protect jumps, IR doubles as the node lock.
            anchor, escalated = self.anchored_target(request.target, lock_depth)
            self._path(plan, anchor, "IR")
            plan.add(NODE_SPACE, anchor, "R" if escalated else "IR")
            return plan

        if op in (MetaOp.READ_LEVEL, MetaOp.READ_SUBTREE):
            # T-on-context analogue: R subtree on the context node.
            anchor, _escalated = self.anchored_target(request.target, lock_depth)
            self._path(plan, anchor, "IR")
            plan.add(NODE_SPACE, anchor, "R")
            return plan

        # Updates keep Node2PL's parent focus: the lock granule is the
        # subtree of the *parent* of the context node (capped by depth),
        # which is why the protocol "reacts a level deeper" and uses very
        # large granules for TArenameTopic.
        anchor = self._parent_anchor(request.target, lock_depth)

        if op is MetaOp.UPDATE_NODE:
            self._path(plan, anchor, "IR")
            plan.add(NODE_SPACE, anchor, "U")
            return plan

        if op in (
            MetaOp.WRITE_CONTENT,
            MetaOp.RENAME_NODE,
            MetaOp.INSERT_CHILD,
            MetaOp.DELETE_SUBTREE,
        ):
            self._path(plan, anchor, "IX")
            plan.add(NODE_SPACE, anchor, "X")
            return plan

        raise AssertionError(f"unhandled meta op {op}")

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _parent_anchor(target: Splid, lock_depth: int) -> Splid:
        """Parent of the context node, capped by the lock depth."""
        level = min(max(target.level - 1, 0), lock_depth)
        return target.ancestor_at_level(level)

    @staticmethod
    def _path(plan: LockPlan, context: Splid, mode: str) -> None:
        for ancestor in context.ancestors_top_down():
            plan.add(NODE_SPACE, ancestor, mode)


def node2pla() -> Node2PLa:
    return Node2PLa()
