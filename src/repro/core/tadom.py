"""The taDOM* protocol group (Section 2.3).

All four variants share one planner; they differ only in their mode table
(taDOM2 / taDOM2+ / taDOM3 / taDOM3+) and in rename handling:

* **taDOM2 / taDOM2+** cover the DOM2 operations; ``renameNode`` (a DOM3
  operation) has no dedicated mode and must fall back to a subtree lock
  (SX) on the renamed element.
* **taDOM3 / taDOM3+** provide the dedicated node modes NU/NX, so a rename
  locks only the node itself plus CX on the parent.
* The "+" variants add combination modes; their effect is entirely inside
  the conversion matrix (LR + IX converts to LRIX instead of fanning NR
  locks out to every child), so no planner change is needed.

Locking discipline (mirroring the paper's Figure 3b example):

* reads place IR on the ancestor path and NR / LR / SR on the context
  node; the lock-depth parameter replaces context locks below level *n*
  with an SR subtree lock on the level-*n* ancestor;
* writes place IX on the path, CX on the parent of the context node, and
  SX on the context node (or NX for taDOM3 renames);
* navigation edges are locked ER (reads) / EX (updates).
"""

from __future__ import annotations

from repro.core.modes import ModeTable
from repro.core.protocol import (
    EDGE_SPACE,
    ID_KEY_SPACE,
    LockPlan,
    LockProtocol,
    MetaOp,
    MetaRequest,
    NODE_SPACE,
)
from repro.core.tables import (
    EDGE_TABLE,
    ID_KEY_TABLE,
    TADOM2_TABLE,
    TADOM2P_TABLE,
    TADOM3_TABLE,
    TADOM3P_TABLE,
)
from repro.splid import Splid


class TaDomProtocol(LockProtocol):
    """Planner shared by taDOM2, taDOM2+, taDOM3, and taDOM3+."""

    group = "taDOM*"
    supports_lock_depth = True
    supports_serializable = True

    def __init__(self, name: str, table: ModeTable):
        self.name = name
        self.node_table = table
        self.has_node_rename = "NX" in table

    def tables(self) -> dict:
        return {
            NODE_SPACE: self.node_table,
            EDGE_SPACE: EDGE_TABLE,
            ID_KEY_SPACE: ID_KEY_TABLE,
        }

    # -- planning ------------------------------------------------------------

    def plan(self, request: MetaRequest, lock_depth: int) -> LockPlan:
        op = request.op
        target = request.target
        plan = LockPlan()

        if op is MetaOp.READ_EDGE:
            plan.add(EDGE_SPACE, (target, request.role), "ER")
            return plan
        if op is MetaOp.WRITE_EDGE:
            plan.add(EDGE_SPACE, (target, request.role), "EX")
            return plan

        anchor, escalated = self.anchored_target(target, lock_depth)

        if op in (MetaOp.READ_NODE, MetaOp.READ_LEVEL, MetaOp.READ_SUBTREE):
            mode = "SR" if escalated or op is MetaOp.READ_SUBTREE else (
                "LR" if op is MetaOp.READ_LEVEL else "NR"
            )
            self._read_path(plan, anchor)
            plan.add(NODE_SPACE, anchor, mode)
            return plan

        if op is MetaOp.READ_CONTENT:
            # The value lives in the string node of the taDOM model; the
            # NR must land there to conflict with a writer's SX on it.
            string_node = target.string_node
            string_anchor, string_escalated = self.anchored_target(
                string_node, lock_depth
            )
            self._read_path(plan, string_anchor)
            plan.add(NODE_SPACE, string_anchor,
                     "SR" if string_escalated else "NR")
            return plan

        if op is MetaOp.UPDATE_NODE:
            update_mode = "SU" if escalated or "NU" not in self.node_table else "NU"
            self._read_path(plan, anchor)
            plan.add(NODE_SPACE, anchor, update_mode)
            return plan

        if op is MetaOp.RENAME_NODE:
            if self.has_node_rename and not escalated:
                self._write_path(plan, anchor)
                plan.add(NODE_SPACE, anchor, "NX")
            else:
                # DOM2 protocols have no node-exclusive mode: subtree lock.
                self._write_path(plan, anchor)
                plan.add(NODE_SPACE, anchor, "SX")
            return plan

        if op is MetaOp.WRITE_CONTENT:
            string_node = target.string_node
            string_anchor, string_escalated = self.anchored_target(
                string_node, lock_depth
            )
            if string_escalated and string_anchor.level <= target.level:
                # Depth cap reached at or above the owner node: one SX.
                self._write_path(plan, string_anchor)
                plan.add(NODE_SPACE, string_anchor, "SX")
            else:
                # CX on the owner, SX on its string node -- the taDOM
                # separation of structure and content.
                self._write_path(plan, target, parent_mode="IX")
                plan.add(NODE_SPACE, target, "CX")
                plan.add(NODE_SPACE, string_node, "SX")
            return plan

        if op in (MetaOp.INSERT_CHILD, MetaOp.DELETE_SUBTREE):
            self._write_path(plan, anchor)
            plan.add(NODE_SPACE, anchor, "SX")
            return plan

        raise AssertionError(f"unhandled meta op {op}")

    # -- path helpers -----------------------------------------------------------

    @staticmethod
    def _read_path(plan: LockPlan, context: Splid) -> None:
        for ancestor in context.ancestors_top_down():
            plan.add(NODE_SPACE, ancestor, "IR")

    @staticmethod
    def _write_path(plan: LockPlan, context: Splid, parent_mode: str = "CX") -> None:
        """IX on the path, CX (by default) on the direct parent.

        This mirrors the paper's T2conv example: SX on the context node
        propagates CX to the parent and IX to the remaining ancestors.
        """
        ancestors = context.ancestors_top_down()
        for ancestor in ancestors[:-1]:
            plan.add(NODE_SPACE, ancestor, "IX")
        if ancestors:
            plan.add(NODE_SPACE, ancestors[-1], parent_mode)


def tadom2() -> TaDomProtocol:
    return TaDomProtocol("taDOM2", TADOM2_TABLE)


def tadom2_plus() -> TaDomProtocol:
    return TaDomProtocol("taDOM2+", TADOM2P_TABLE)


def tadom3() -> TaDomProtocol:
    return TaDomProtocol("taDOM3", TADOM3_TABLE)


def tadom3_plus() -> TaDomProtocol:
    return TaDomProtocol("taDOM3+", TADOM3P_TABLE)
