"""The paper's primary contribution: 11 XML lock protocols.

* :mod:`repro.core.modes` -- mode tables, compatibility/conversion
  matrices, and the coverage algebra that derives the extended taDOM
  tables the paper could not print.
* :mod:`repro.core.tables` -- the concrete matrices (Figures 2, 3a, 4,
  verbatim) plus the reconstructed taDOM2+/taDOM3/taDOM3+ tables.
* :mod:`repro.core.protocol` -- the meta-synchronization interface
  (Section 3.3): abstract lock requests and the protocol contract.
* Protocol groups: :mod:`repro.core.node2pl` (*-2PL),
  :mod:`repro.core.node2pla`, :mod:`repro.core.mgl` (MGL*),
  :mod:`repro.core.tadom` (taDOM*).
"""

from repro.core.modes import Conversion, ModeTable
from repro.core.protocol import (
    Access,
    CONTENT_SPACE,
    EDGE_SPACE,
    EdgeRole,
    ID_SPACE,
    LockPlan,
    LockProtocol,
    LockStep,
    MetaOp,
    MetaRequest,
    NODE_SPACE,
    READ_OPS,
    STRUCT_SPACE,
)
from repro.core.registry import (
    ALL_PROTOCOLS,
    GROUPS,
    depth_aware_protocols,
    get_protocol,
    group_of,
    protocol_names,
)

__all__ = [
    "ALL_PROTOCOLS",
    "Access",
    "CONTENT_SPACE",
    "Conversion",
    "EDGE_SPACE",
    "EdgeRole",
    "GROUPS",
    "ID_SPACE",
    "LockPlan",
    "LockProtocol",
    "LockStep",
    "MetaOp",
    "MetaRequest",
    "ModeTable",
    "NODE_SPACE",
    "READ_OPS",
    "STRUCT_SPACE",
    "depth_aware_protocols",
    "get_protocol",
    "group_of",
    "protocol_names",
]
